//! Fixture: a pre-existing violation that the committed fixture baseline
//! allows — it must NOT gate as a regression.

pub fn legacy_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}
