//! Synthetic data generation matched to a QO_N instance.
//!
//! For every query-graph edge `{i, j}` with selectivity `s = 1/d`, relations
//! `R_i` and `R_j` each get a join column whose values are uniform over
//! `0..d`. Two independent uniform draws collide with probability exactly
//! `1/d`, so the *expected* join sizes equal the model's independence
//! products `N(X)` — the assumption under which §2.1's estimates are exact.

use aqo_core::qon::QoNInstance;
use rand::Rng;
use std::collections::HashMap;

/// A materialized database for one QO_N instance.
#[derive(Clone, Debug)]
pub struct Database {
    /// `columns[(i, j)]` is `R_i`'s join column for the predicate with
    /// `R_j` (one entry per tuple of `R_i`).
    columns: HashMap<(usize, usize), Vec<u64>>,
    /// Tuple counts per relation.
    sizes: Vec<usize>,
    /// Per-edge domain sizes `d ≈ 1/s`.
    domains: HashMap<(usize, usize), u64>,
}

/// Largest relation the engine will materialize.
pub const MAX_TUPLES: usize = 5_000_000;

impl Database {
    /// Generates data for `inst`. Panics if a relation size or a
    /// selectivity reciprocal does not fit comfortably in machine range
    /// (the engine is for *calibration-sized* instances, not the reduction
    /// monsters).
    pub fn generate(inst: &QoNInstance, rng: &mut impl Rng) -> Database {
        let sizes: Vec<usize> = inst
            .sizes()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let v = t
                    .to_u64()
                    .unwrap_or_else(|| panic!("relation {i} too large to materialize"))
                    as usize;
                assert!(v <= MAX_TUPLES, "relation {i} exceeds MAX_TUPLES");
                v
            })
            .collect();
        let mut columns = HashMap::new();
        let mut domains = HashMap::new();
        for (u, v) in inst.graph().edges() {
            let s = inst.selectivity().get(u, v);
            // d = round(1/s); the declared selectivity is then exactly 1/d
            // when s is a unit fraction (the common case in this repo).
            let d = s.recip().to_f64().round() as u64;
            assert!(d >= 1, "selectivity > 1?");
            domains.insert((u, v), d);
            domains.insert((v, u), d);
            for (owner, _) in [(u, v), (v, u)] {
                let col: Vec<u64> = (0..sizes[owner]).map(|_| rng.gen_range(0..d)).collect();
                columns.insert((owner, if owner == u { v } else { u }), col);
            }
        }
        Database { columns, sizes, domains }
    }

    /// Tuple count of relation `i`.
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// `R_i`'s join column for the predicate with `R_j`.
    pub fn column(&self, i: usize, j: usize) -> &[u64] {
        &self.columns[&(i, j)]
    }

    /// Domain size of the `{i, j}` predicate.
    pub fn domain(&self, i: usize, j: usize) -> u64 {
        self.domains[&(i, j)]
    }

    /// Whether tuple `ti` of `R_i` joins tuple `tj` of `R_j`.
    pub fn matches(&self, i: usize, ti: usize, j: usize, tj: usize) -> bool {
        self.columns[&(i, j)][ti] == self.columns[&(j, i)][tj]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(t0: u64, t1: u64, d: u64) -> QoNInstance {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(d)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(t0.div_ceil(d).max(1)));
        w.set(1, 0, BigUint::from(t1.div_ceil(d).max(1)));
        QoNInstance::new(g, vec![BigUint::from(t0), BigUint::from(t1)], s, w)
    }

    #[test]
    fn generated_shapes() {
        let inst = pair(100, 200, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let db = Database::generate(&inst, &mut rng);
        assert_eq!(db.size(0), 100);
        assert_eq!(db.size(1), 200);
        assert_eq!(db.column(0, 1).len(), 100);
        assert_eq!(db.column(1, 0).len(), 200);
        assert_eq!(db.domain(0, 1), 10);
        assert!(db.column(0, 1).iter().all(|&v| v < 10));
    }

    #[test]
    fn match_probability_tracks_selectivity() {
        // Empirical collision rate over *every* tuple pair ≈ 1/d. Sampling
        // pairs as (k % 1000, k·7919 % 1000) visited only 1000 distinct
        // pairs — k % 1000 determines both coordinates — leaving enough
        // variance that the verdict depended on the RNG stream.
        let inst = pair(1000, 1000, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let db = Database::generate(&inst, &mut rng);
        let c0 = db.column(0, 1);
        let c1 = db.column(1, 0);
        let hits: usize =
            c0.iter().map(|a| c1.iter().filter(|&b| a == b).count()).sum();
        let rate = hits as f64 / (c0.len() * c1.len()) as f64;
        assert!((rate - 0.125).abs() < 0.02, "rate {rate} vs expected 0.125");
    }
}
