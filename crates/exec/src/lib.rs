//! A micro join-execution engine that *runs* the queries the cost model
//! prices.
//!
//! The paper's QO_N cost model (§2.1) is analytic: `N(X)` estimates
//! intermediate cardinalities as independence products, and
//! `H_i = N(X)·min_k w_{jk}` charges the cheapest per-outer-tuple access
//! path. This crate closes the loop: it synthesizes relations whose join
//! columns *actually have* the declared selectivities (in expectation),
//! executes left-deep nested-loops plans tuple by tuple, counts real work,
//! and compares against the model — the calibration a downstream adopter
//! would demand before trusting any of the optimizers.
//!
//! * [`data`] — synthetic relation generation matched to a
//!   [`QoNInstance`](aqo_core::qon::QoNInstance)'s selectivity matrix;
//! * [`engine`] — left-deep nested-loops / index-probe execution with work
//!   counters;
//! * [`validate`] — model-vs-measured comparison over repeated trials;
//! * [`hashjoin`] — a hybrid-hash spill simulator checking the §2.2 `g`
//!   shape (linear, anchored at `hjmin` and `b_S`) operationally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod engine;
pub mod hashjoin;
pub mod validate;

pub use data::Database;
pub use engine::{ExecutionReport, Executor};
