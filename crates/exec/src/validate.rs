//! Model-vs-measured calibration: run a plan repeatedly on fresh synthetic
//! data and compare average measured cardinalities/work against the
//! analytic `N(X)` / `H_i` / `C(Z)`.

use crate::{Database, Executor};
use aqo_bignum::BigRational;
use aqo_core::{qon::QoNInstance, CostScalar, JoinSequence};
use rand::Rng;

/// Outcome of a calibration run.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Predicted intermediate cardinalities `N_0 … N_{n−1}` (as `f64`).
    pub predicted_intermediates: Vec<f64>,
    /// Average measured intermediate cardinalities.
    pub measured_intermediates: Vec<f64>,
    /// Predicted total cost `C(Z)` under the instance's `w` entries.
    pub predicted_cost: f64,
    /// Average measured total work (index mode).
    pub measured_work: f64,
    /// Trials averaged.
    pub trials: usize,
}

impl Calibration {
    /// Worst relative error between predicted and measured intermediates
    /// (skipping predictions below `floor` where sampling noise dominates).
    pub fn worst_intermediate_error(&self, floor: f64) -> f64 {
        self.predicted_intermediates
            .iter()
            .zip(&self.measured_intermediates)
            .filter(|(p, _)| **p >= floor)
            .map(|(p, m)| ((m - p) / p).abs())
            .fold(0.0, f64::max)
    }

    /// Relative error of total work against the model cost.
    pub fn cost_error(&self) -> f64 {
        ((self.measured_work - self.predicted_cost) / self.predicted_cost).abs()
    }
}

/// Runs `trials` executions of `z` on independently generated databases and
/// aggregates the comparison.
pub fn calibrate(
    inst: &QoNInstance,
    z: &JoinSequence,
    trials: usize,
    rng: &mut impl Rng,
) -> Calibration {
    assert!(trials >= 1);
    let report = inst.cost::<BigRational>(z);
    let predicted_intermediates: Vec<f64> =
        report.intermediates.iter().map(|v| CostScalar::log2(v).exp2()).collect();
    let predicted_cost = CostScalar::log2(&report.total).exp2();
    let n = inst.n();
    let mut measured = vec![0.0f64; n];
    let mut work = 0.0f64;
    for _ in 0..trials {
        let db = Database::generate(inst, rng);
        let ex = Executor::new(inst, &db);
        let rep = ex.run(z, true);
        for (i, &m) in rep.intermediates.iter().enumerate() {
            measured[i] += m as f64 / trials as f64;
        }
        work += rep.total_work as f64 / trials as f64;
    }
    Calibration {
        predicted_intermediates,
        measured_intermediates: measured,
        predicted_cost,
        measured_work: work,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Chain with sizes/selectivities chosen so every expected intermediate
    /// stays ≥ ~500 (sampling noise small) and w = t·s exactly.
    fn calibration_chain() -> QoNInstance {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sizes =
            vec![BigUint::from(500u64), BigUint::from(400u64), BigUint::from(300u64), BigUint::from(200u64)];
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for ((u, v), d) in [((0usize, 1usize), 100u64), ((1, 2), 150), ((2, 3), 100)] {
            s.set(u, v, BigRational::new(BigInt::one(), BigUint::from(d)));
            let t = |i: usize| [500u64, 400, 300, 200][i];
            w.set(u, v, BigUint::from((t(u) as f64 / d as f64).ceil().max(1.0) as u64));
            w.set(v, u, BigUint::from((t(v) as f64 / d as f64).ceil().max(1.0) as u64));
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn intermediates_track_the_model() {
        let inst = calibration_chain();
        let mut rng = StdRng::seed_from_u64(42);
        let z = JoinSequence::identity(4);
        let cal = calibrate(&inst, &z, 6, &mut rng);
        // Expected intermediates: 500, 500·400/100=2000, 2000·300/150=4000,
        // 4000·200/100=8000 — all large; demand ≤ 15% average error.
        assert!(
            cal.worst_intermediate_error(100.0) < 0.15,
            "intermediates off by {:.1}%: {:?} vs {:?}",
            cal.worst_intermediate_error(100.0) * 100.0,
            cal.measured_intermediates,
            cal.predicted_intermediates
        );
    }

    #[test]
    fn work_tracks_the_cost_model() {
        let inst = calibration_chain();
        let mut rng = StdRng::seed_from_u64(43);
        let z = JoinSequence::identity(4);
        let cal = calibrate(&inst, &z, 6, &mut rng);
        // w entries are ceil(t·s): the measured probe counts match within
        // sampling noise + ceiling slack.
        assert!(
            cal.cost_error() < 0.2,
            "cost off by {:.1}%: measured {} vs predicted {}",
            cal.cost_error() * 100.0,
            cal.measured_work,
            cal.predicted_cost
        );
    }

    #[test]
    fn better_plans_really_are_better() {
        // The model's plan ranking must be reflected in measured work.
        let inst = calibration_chain();
        let mut rng = StdRng::seed_from_u64(44);
        let good = JoinSequence::identity(4);
        let bad = JoinSequence::new(vec![0, 3, 1, 2]); // cartesian product inside
        let cal_good = calibrate(&inst, &good, 3, &mut rng);
        let cal_bad = calibrate(&inst, &bad, 3, &mut rng);
        assert!(cal_bad.measured_work > cal_good.measured_work * 2.0);
    }
}
