//! A hybrid hash-join spill simulator for the QO_H cost shape (§2.2).
//!
//! The paper abstracts one hash join's I/O as
//! `h(m, b_R, b_S) = (b_R + b_S)·Θ(g(m, b_S)) + b_S` with `g` linear
//! decreasing, `g(b_S) = 0`, `g(hjmin) = Θ(1)`. This module *simulates* the
//! mechanism behind that abstraction — hybrid hash partitioning where the
//! buckets that don't fit in memory spill to disk and force both build and
//! probe tuples through extra I/O — and measures the spilled fraction, so
//! the model's structural constraints on `g` can be checked against an
//! operational account rather than taken on faith:
//!
//! * below some minimum memory the join cannot run (too many buckets);
//! * between the minimum and `b_S` the spilled I/O decreases (essentially
//!   linearly) in `m`;
//! * at `m ≥ b_S` nothing spills.

use rand::Rng;

/// Result of simulating one hybrid hash join.
#[derive(Clone, Debug)]
pub struct SpillReport {
    /// Pages of build-side input (`b_S`).
    pub build_pages: usize,
    /// Pages of probe-side input (`b_R`).
    pub probe_pages: usize,
    /// Pages written to + read back from disk because their bucket spilled
    /// (both sides).
    pub spilled_io: usize,
    /// The fraction of input that spilled: `spilled_io / (b_R + b_S)`.
    pub spilled_fraction: f64,
}

/// Simulates a hybrid hash join of a build side with `build_pages` pages
/// and a probe side with `probe_pages` pages under `memory` pages of
/// budget, using `buckets` hash partitions.
///
/// Mechanism: build tuples hash uniformly into `buckets` partitions; the
/// simulator keeps the largest prefix of partitions that fits in
/// `memory − buckets` pages (one page per bucket is reserved as an output
/// buffer — this is what makes very small memory infeasible) and spills the
/// rest. A spilled page costs one write and one read on each side.
///
/// Returns `None` when the join is infeasible (`memory ≤ buckets`: no room
/// for even the output buffers plus one resident page).
pub fn simulate(
    build_pages: usize,
    probe_pages: usize,
    memory: usize,
    buckets: usize,
    rng: &mut impl Rng,
) -> Option<SpillReport> {
    assert!(buckets >= 1 && build_pages >= 1);
    if memory <= buckets {
        return None;
    }
    // Distribute build pages over buckets (uniform hashing).
    let mut bucket_build = vec![0usize; buckets];
    for _ in 0..build_pages {
        bucket_build[rng.gen_range(0..buckets)] += 1;
    }
    let mut bucket_probe = vec![0usize; buckets];
    for _ in 0..probe_pages {
        bucket_probe[rng.gen_range(0..buckets)] += 1;
    }
    // Keep buckets resident greedily (largest first) within the budget.
    let mut order: Vec<usize> = (0..buckets).collect();
    order.sort_by_key(|&b| std::cmp::Reverse(bucket_build[b]));
    let mut free = memory - buckets; // one output-buffer page per bucket
    let mut resident = vec![false; buckets];
    for &b in &order {
        if bucket_build[b] <= free {
            resident[b] = true;
            free -= bucket_build[b];
        }
    }
    let spilled_io: usize = (0..buckets)
        .filter(|&b| !resident[b])
        .map(|b| 2 * (bucket_build[b] + bucket_probe[b]))
        .sum();
    let total = build_pages + probe_pages;
    Some(SpillReport {
        build_pages,
        probe_pages,
        spilled_io,
        spilled_fraction: spilled_io as f64 / (2 * total) as f64,
    })
}

/// Sweeps memory from the infeasibility threshold to `b_S` and reports
/// `(memory, average spilled fraction)` — the empirical counterpart of
/// the model's `g(m, b_S)` curve.
pub fn g_curve(
    build_pages: usize,
    probe_pages: usize,
    buckets: usize,
    points: usize,
    trials: usize,
    rng: &mut impl Rng,
) -> Vec<(usize, f64)> {
    assert!(points >= 2);
    let min_m = buckets + 1;
    let max_m = build_pages + buckets;
    (0..points)
        .map(|i| {
            let m = min_m + (max_m - min_m) * i / (points - 1);
            let avg: f64 = (0..trials)
                .map(|_| {
                    simulate(build_pages, probe_pages, m, buckets, rng)
                        .expect("m above threshold")
                        .spilled_fraction
                })
                .sum::<f64>()
                / trials as f64;
            (m, avg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn infeasible_below_bucket_count() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate(100, 100, 16, 16, &mut rng).is_none());
        assert!(simulate(100, 100, 17, 16, &mut rng).is_some());
    }

    #[test]
    fn no_spill_with_full_memory() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate(200, 500, 200 + 32, 32, &mut rng).unwrap();
        assert_eq!(r.spilled_io, 0);
        assert_eq!(r.spilled_fraction, 0.0);
    }

    #[test]
    fn everything_spills_near_threshold() {
        let mut rng = StdRng::seed_from_u64(3);
        // Memory only one page above the output buffers: almost every
        // bucket spills.
        let r = simulate(1000, 1000, 33, 32, &mut rng).unwrap();
        assert!(r.spilled_fraction > 0.9, "fraction {}", r.spilled_fraction);
    }

    #[test]
    fn g_curve_is_monotone_and_anchored() {
        // The empirical curve respects the model's constraints on g:
        // decreasing in m, ~1 at the minimum, 0 at b_S.
        let mut rng = StdRng::seed_from_u64(4);
        let curve = g_curve(512, 2048, 16, 9, 8, &mut rng);
        assert!(curve.first().unwrap().1 > 0.85);
        assert_eq!(curve.last().unwrap().1, 0.0);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 0.03, "non-monotone: {curve:?}");
        }
    }

    #[test]
    fn g_curve_is_roughly_linear_mid_range() {
        // Linear-shape check: the midpoint of the curve is within 0.15 of
        // the straight line between its endpoints (the paper requires g
        // linear; uniform hashing gives it up to bucket granularity).
        let mut rng = StdRng::seed_from_u64(5);
        let curve = g_curve(1024, 1024, 16, 11, 10, &mut rng);
        let (x0, y0) = curve[0];
        let (x1, y1) = *curve.last().unwrap();
        for &(x, y) in &curve[1..curve.len() - 1] {
            let t = (x - x0) as f64 / (x1 - x0) as f64;
            let line = y0 + t * (y1 - y0);
            assert!((y - line).abs() < 0.15, "deviation at m={x}: {y} vs {line}");
        }
    }
}
