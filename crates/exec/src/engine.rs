//! Left-deep nested-loops execution with work counters.
//!
//! The executor mirrors the §2.1 cost semantics operationally:
//!
//! * the intermediate after `i` relations is a set of composite tuples
//!   (one row id per joined relation) — its cardinality is the measured
//!   counterpart of `N(X)`;
//! * joining the next relation `R_j` uses the cheapest access path the
//!   model's `min_k w_{jk}` describes: a hash index on the join column of
//!   one prefix predicate (candidates = expected `t_j·s`), or a full scan
//!   when no prefix predicate exists (a cartesian product, `w = t_j`);
//!   remaining predicates to the prefix are applied as filters;
//! * `work` counts inner tuples *touched* per outer tuple — the measured
//!   counterpart of `H_i`.

use crate::data::Database;
use aqo_core::{JoinSequence, qon::QoNInstance};
use std::collections::HashMap;

/// Per-join and total measurements of one execution.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Measured intermediate cardinalities after each prefix
    /// (`intermediates[i]` = rows after joining `i + 1` relations;
    /// `intermediates[0]` = `|R_{z₁}|`).
    pub intermediates: Vec<usize>,
    /// Inner tuples touched by each join (`per_join[i]` for join `J_{i+1}`).
    pub per_join: Vec<u64>,
    /// Total touched tuples — the measured `C(Z)` analogue.
    pub total_work: u64,
}

/// Executes left-deep plans over a [`Database`].
pub struct Executor<'a> {
    inst: &'a QoNInstance,
    db: &'a Database,
}

impl<'a> Executor<'a> {
    /// New executor for one instance + database pair.
    pub fn new(inst: &'a QoNInstance, db: &'a Database) -> Self {
        Executor { inst, db }
    }

    /// Runs the full left-deep plan `z`, counting work.
    ///
    /// `use_index` selects the access path: `true` probes a hash index on
    /// the lowest-`w` prefix predicate (the model's `min_k w_{jk}` with
    /// `w = t·s`); `false` always scans the inner relation
    /// (`w = t_j`).
    pub fn run(&self, z: &JoinSequence, use_index: bool) -> ExecutionReport {
        let n = self.inst.n();
        assert_eq!(z.len(), n);
        // Composite tuples: row ids indexed by *position* in z.
        let first = z.at(0);
        let mut rows: Vec<Vec<usize>> = (0..self.db.size(first)).map(|r| vec![r]).collect();
        let mut intermediates = vec![rows.len()];
        let mut per_join = Vec::with_capacity(n - 1);
        let mut total_work = 0u64;
        for i in 1..n {
            let j = z.at(i);
            // Prefix relations with a predicate to j.
            let preds: Vec<(usize, usize)> = (0..i)
                .filter(|&p| self.inst.graph().has_edge(z.at(p), j))
                .map(|p| (p, z.at(p)))
                .collect();
            // Choose the probe predicate: smallest w(j, k) — with our data
            // that is the smallest t_j·s, i.e. the largest domain.
            let probe = preds
                .iter()
                .max_by_key(|&&(_, k)| self.db.domain(j, k))
                .copied();
            let mut work = 0u64;
            let mut next: Vec<Vec<usize>> = Vec::new();
            match (use_index, probe) {
                (true, Some((ppos, pk))) => {
                    // Build a hash index on R_j's column for predicate pk.
                    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
                    for (row, &val) in self.db.column(j, pk).iter().enumerate() {
                        index.entry(val).or_default().push(row);
                    }
                    for tuple in &rows {
                        let outer_row = tuple[ppos];
                        let key = self.db.column(pk, j)[outer_row];
                        if let Some(cands) = index.get(&key) {
                            work += cands.len() as u64;
                            for &cand in cands {
                                if self.filters_pass(&preds, tuple, j, cand, Some(ppos)) {
                                    let mut t = tuple.clone();
                                    t.push(cand);
                                    next.push(t);
                                }
                            }
                        }
                    }
                }
                _ => {
                    // Full inner scan per outer tuple.
                    let inner_n = self.db.size(j);
                    for tuple in &rows {
                        work += inner_n as u64;
                        for cand in 0..inner_n {
                            if self.filters_pass(&preds, tuple, j, cand, None) {
                                let mut t = tuple.clone();
                                t.push(cand);
                                next.push(t);
                            }
                        }
                    }
                }
            }
            rows = next;
            intermediates.push(rows.len());
            per_join.push(work);
            total_work += work;
        }
        ExecutionReport { intermediates, per_join, total_work }
    }

    fn filters_pass(
        &self,
        preds: &[(usize, usize)],
        tuple: &[usize],
        j: usize,
        cand: usize,
        skip_pos: Option<usize>,
    ) -> bool {
        preds.iter().all(|&(ppos, pk)| {
            if Some(ppos) == skip_pos {
                return true; // already matched via the index key
            }
            self.db.matches(pk, tuple[ppos], j, cand)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain3(d: u64) -> QoNInstance {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let sizes = vec![BigUint::from(40u64), BigUint::from(50u64), BigUint::from(60u64)];
        let mut s = SelectivityMatrix::new();
        let sel = BigRational::new(BigInt::one(), BigUint::from(d));
        s.set(0, 1, sel.clone());
        s.set(1, 2, sel.clone());
        let mut w = AccessCostMatrix::new();
        for (j, k) in [(0usize, 1usize), (1, 0), (1, 2), (2, 1)] {
            let tj = match j {
                0 => 40u64,
                1 => 50,
                _ => 60,
            };
            w.set(j, k, BigUint::from(tj.div_ceil(d).max(1)));
        }
        QoNInstance::new(g, sizes, s, w)
    }

    /// Ground truth by exhaustive tuple enumeration.
    fn brute_join(db: &Database, inst: &QoNInstance) -> usize {
        let mut count = 0;
        for a in 0..db.size(0) {
            for b in 0..db.size(1) {
                if !db.matches(0, a, 1, b) {
                    continue;
                }
                for c in 0..db.size(2) {
                    if db.matches(1, b, 2, c) {
                        count += 1;
                    }
                }
            }
        }
        let _ = inst;
        count
    }

    #[test]
    fn scan_and_index_agree_with_bruteforce() {
        let inst = chain3(5);
        let mut rng = StdRng::seed_from_u64(3);
        let db = Database::generate(&inst, &mut rng);
        let expected = brute_join(&db, &inst);
        let ex = Executor::new(&inst, &db);
        for perm in aqo_core::join::permutations(3) {
            let z = JoinSequence::new(perm);
            let scan = ex.run(&z, false);
            let index = ex.run(&z, true);
            assert_eq!(*scan.intermediates.last().unwrap(), expected, "{z:?}");
            assert_eq!(*index.intermediates.last().unwrap(), expected, "{z:?}");
        }
    }

    #[test]
    fn index_never_touches_more_than_scan() {
        let inst = chain3(4);
        let mut rng = StdRng::seed_from_u64(4);
        let db = Database::generate(&inst, &mut rng);
        let ex = Executor::new(&inst, &db);
        let z = JoinSequence::identity(3);
        let scan = ex.run(&z, false);
        let index = ex.run(&z, true);
        assert!(index.total_work <= scan.total_work);
        // Scan work for J1 is exactly |outer|·|inner|.
        assert_eq!(scan.per_join[0], 40 * 50);
    }

    #[test]
    fn cartesian_join_costs_full_inner() {
        // Order (0, 2, 1): joining R2 onto {R0} has no predicate — the
        // engine must fall back to a scan even in index mode.
        let inst = chain3(4);
        let mut rng = StdRng::seed_from_u64(5);
        let db = Database::generate(&inst, &mut rng);
        let ex = Executor::new(&inst, &db);
        let z = JoinSequence::new(vec![0, 2, 1]);
        let rep = ex.run(&z, true);
        assert_eq!(rep.per_join[0], 40 * 60, "cartesian product scans everything");
        // And the result matches the scan-mode execution.
        let rep2 = ex.run(&z, false);
        assert_eq!(rep.intermediates.last(), rep2.intermediates.last());
    }
}
