//! Property tests for the reductions: completeness/soundness over random
//! instance families, with ground truth from the exact solvers.

use aqo_bignum::{BigRational, BigUint};
use aqo_graph::{clique, cover};
use aqo_optimizer::star;
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized, SppcsInstance};
use aqo_reductions::{clique_reduction, decode, fn_reduction, sat_to_vc, sqo_reduction};
use aqo_sat::{maxsat, CnfFormula, Lit};
use proptest::prelude::*;

fn small_3cnf() -> impl Strategy<Value = CnfFormula> {
    (3usize..=4, 1usize..=5).prop_flat_map(|(n, m)| {
        prop::collection::vec(
            prop::collection::vec((0..n, any::<bool>()), 3..=3),
            m..=m,
        )
        .prop_map(move |clauses| {
            CnfFormula::from_clauses(
                n,
                clauses
                    .into_iter()
                    .map(|c| c.into_iter().map(|(var, positive)| Lit { var, positive }).collect())
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vc_reduction_tracks_maxsat(f in small_3cnf()) {
        let u = f.num_clauses() - maxsat::max_sat(&f).max_satisfied;
        let red = sat_to_vc::reduce(&f);
        let vc = cover::vertex_cover_number(&red.graph);
        // vc = v + 2m + u exactly (both directions of the Lemma 3 argument).
        prop_assert_eq!(vc, red.target_cover + u);
    }

    #[test]
    fn clique_reduction_tracks_maxsat(f in small_3cnf()) {
        let u = f.num_clauses() - maxsat::max_sat(&f).max_satisfied;
        let red = clique_reduction::sat_to_clique(&f);
        let omega = clique::clique_number(&red.graph);
        prop_assert_eq!(omega, red.predicted_omega(u));
    }

    #[test]
    fn two_thirds_clique_tracks_maxsat(f in small_3cnf()) {
        let u = f.num_clauses() - maxsat::max_sat(&f).max_satisfied;
        let red = clique_reduction::sat_to_two_thirds_clique(&f);
        let omega = clique::clique_number(&red.graph);
        prop_assert_eq!(omega, red.predicted_omega(u));
        prop_assert_eq!(red.graph.n() % 3, 0);
        // Satisfiable iff the ⅔ threshold is met.
        prop_assert_eq!(
            omega >= clique_reduction::two_thirds_target(&red),
            u == 0
        );
    }

    #[test]
    fn fn_bounds_internally_consistent(e in 2u64..20, omega in 1u64..20, a_pow in 1u32..6) {
        // K, LB and the gap exponent satisfy LB = K·a^{gap} identically.
        let a = BigUint::from(4u64).pow(a_pow as u64);
        let n = e + omega + 2;
        let k = fn_reduction::k_bound(&a, e);
        let lb = fn_reduction::lemma8_lower_bound(&a, e, omega, n);
        let gap = fn_reduction::certified_gap_exponent(e, omega);
        let lhs = BigRational::from(lb);
        let rhs = BigRational::from(k) * BigRational::from(a.clone()).pow(gap);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn lemma6_sequence_contract(n in 6usize..12, seed in any::<u64>()) {
        let k = n / 2 + 1 + (seed % 2) as usize;
        let k = k.min(n);
        let g = aqo_graph::generators::dense_known_omega(n, k);
        let witness = clique::max_clique(&g);
        let z = fn_reduction::lemma6_sequence(&g, &witness);
        prop_assert_eq!(z.len(), n);
        // Clique first.
        let prefix: Vec<usize> = z.prefix(witness.len()).to_vec();
        prop_assert!(g.is_clique(&prefix));
        // No cartesian products on connected graphs.
        let red = fn_reduction::reduce(&g, &BigUint::from(4u64), 2);
        prop_assert!(!red.instance.has_cartesian_product(&z));
    }

    #[test]
    fn partition_sppcs_equivalence(items in prop::collection::vec(0u64..10, 2..7)) {
        prop_assume!(items.iter().sum::<u64>() % 2 == 0);
        let p = PartitionInstance::new(items);
        let s = partition_to_sppcs(&p);
        prop_assert_eq!(p.is_yes(), s.is_yes());
    }

    #[test]
    fn sppcs_sqo_equivalence(
        pairs in prop::collection::vec((2u64..7, 1u64..7), 1..4),
        l in 0u64..40,
    ) {
        let s = SppcsInstance {
            pairs: pairs.iter().map(|&(p, c)| (BigUint::from(p), BigUint::from(c))).collect(),
            l: BigUint::from(l),
        };
        let expected = s.is_yes();
        let red = sqo_reduction::reduce(&s);
        let (plan, opt) = star::optimize(&red.instance);
        prop_assert_eq!(opt <= red.budget, expected);
        // When YES, the decoded subset achieves the SPPCS bound.
        if expected {
            let subset = decode::subset_from_star_plan(&plan);
            let mask = subset.iter().fold(0u64, |m, &i| m | 1 << i);
            prop_assert!(s.objective(mask) <= s.l, "decoded {subset:?}");
        }
    }

    #[test]
    fn normalization_sound(
        pairs in prop::collection::vec((0u64..6, 0u64..6), 1..5),
        l in 0u64..30,
    ) {
        let s = SppcsInstance {
            pairs: pairs.iter().map(|&(p, c)| (BigUint::from(p), BigUint::from(c))).collect(),
            l: BigUint::from(l),
        };
        let expected = s.is_yes();
        match s.normalize() {
            Normalized::Trivial(ans) => prop_assert_eq!(ans, expected),
            Normalized::Instance(norm) => prop_assert_eq!(norm.is_yes(), expected),
        }
    }
}
