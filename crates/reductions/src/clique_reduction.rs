//! Lemma 3 and Lemma 4: 3SAT → CLIQUE and 3SAT → ⅔CLIQUE.
//!
//! Both start from the Garey–Johnson VERTEX COVER graph `G` on
//! `n_G = 2v + 3m` vertices ([`crate::sat_to_vc`]):
//!
//! * **Lemma 3 (CLIQUE)** — take the complement `Ḡ` (whose cliques are
//!   `G`'s independent sets) and append a complete graph on `4v + 3m` fresh
//!   vertices, each connected to every old vertex. Cliques of the result
//!   are `IS(G) + (4v + 3m)`, so
//!   `ω = (n_G − vc(G)) + 4v + 3m = 5v + 4m − u`, where `u` is the minimum
//!   number of unsatisfied clauses: the gap in MaxSAT becomes a gap in ω.
//! * **Lemma 4 (⅔CLIQUE)** — append instead `n₁ = v + 3m` universal
//!   vertices, sized so that satisfiable formulas give
//!   `ω = 2v + 4m = (2/3)·N` with `N = 3v + 6m` total vertices, and `u`
//!   unsatisfied clauses give `ω = (2/3)N − u`.
//!
//! (The Lemma 4 padding count is derived from the same computation the
//! paper performs with its `γ` from Theorem 2: the padding makes the
//! satisfiable clique hit exactly two-thirds.)

use crate::sat_to_vc;
use aqo_graph::Graph;
use aqo_sat::CnfFormula;

/// Output of the Lemma 3 / Lemma 4 constructions.
#[derive(Clone, Debug)]
pub struct CliqueReduction {
    /// The produced graph.
    pub graph: Graph,
    /// Number of source-formula variables `v`.
    pub num_vars: usize,
    /// Number of source-formula clauses `m`.
    pub num_clauses: usize,
    /// Index at which the padding (complete/universal) vertices begin.
    pub padding_start: usize,
    /// Clique size achieved when the formula is satisfiable.
    pub satisfiable_omega: usize,
}

impl CliqueReduction {
    /// The predicted clique number given the exact minimum number of
    /// unsatisfied clauses `u` (0 when satisfiable): `satisfiable_omega − u`.
    pub fn predicted_omega(&self, min_unsatisfied: usize) -> usize {
        self.satisfiable_omega - min_unsatisfied
    }
}

fn complement_plus_universal(f: &CnfFormula, padding: usize, satisfiable_omega: usize) -> CliqueReduction {
    let vc = sat_to_vc::reduce(f);
    let base = vc.graph.complement();
    let n_old = base.n();
    let n = n_old + padding;
    let mut g = Graph::new(n);
    for (a, b) in base.edges() {
        g.add_edge(a, b);
    }
    for p in n_old..n {
        for q in 0..n {
            if q != p {
                g.add_edge(p.min(q), p.max(q));
            }
        }
    }
    CliqueReduction {
        graph: g,
        num_vars: f.num_vars(),
        num_clauses: f.num_clauses(),
        padding_start: n_old,
        satisfiable_omega,
    }
}

/// Lemma 3: 3SAT → CLIQUE. Satisfiable formulas map to graphs with
/// `ω = 5v + 4m`; a formula whose best assignment leaves `u` clauses
/// unsatisfied maps to `ω = 5v + 4m − u`.
pub fn sat_to_clique(f: &CnfFormula) -> CliqueReduction {
    assert!(f.is_3cnf());
    let v = f.num_vars();
    let m = f.num_clauses();
    complement_plus_universal(f, 4 * v + 3 * m, 5 * v + 4 * m)
}

/// Lemma 4: 3SAT → ⅔CLIQUE. The output graph has `N = 3v + 6m` vertices;
/// satisfiable formulas give `ω = (2/3)·N`, and `u` unsatisfied clauses give
/// `ω = (2/3)·N − u`.
pub fn sat_to_two_thirds_clique(f: &CnfFormula) -> CliqueReduction {
    assert!(f.is_3cnf());
    let v = f.num_vars();
    let m = f.num_clauses();
    complement_plus_universal(f, v + 3 * m, 2 * v + 4 * m)
}

/// The ⅔CLIQUE question for a reduction output: does the graph contain a
/// clique on two-thirds of its vertices? (Total vertex count is always a
/// multiple of 3 by construction.)
pub fn two_thirds_target(red: &CliqueReduction) -> usize {
    debug_assert_eq!(red.graph.n() % 3, 0);
    2 * red.graph.n() / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_graph::clique;
    use aqo_sat::{generators, maxsat, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn min_unsat(f: &CnfFormula) -> usize {
        f.num_clauses() - maxsat::max_sat(f).max_satisfied
    }

    #[test]
    fn lemma3_omega_formula_satisfiable() {
        let mut rng = StdRng::seed_from_u64(2);
        let (f, _) = generators::planted_3sat(3, 3, &mut rng);
        let r = sat_to_clique(&f);
        let omega = clique::clique_number(&r.graph);
        assert_eq!(omega, r.satisfiable_omega);
        assert_eq!(omega, r.predicted_omega(0));
    }

    #[test]
    fn lemma3_omega_formula_unsatisfiable() {
        let f = generators::contradiction_blocks(1); // u = 1 exactly
        let r = sat_to_clique(&f);
        let omega = clique::clique_number(&r.graph);
        assert_eq!(min_unsat(&f), 1);
        assert_eq!(omega, r.predicted_omega(1));
        assert!(omega < r.satisfiable_omega);
    }

    #[test]
    fn lemma4_hits_exactly_two_thirds_when_satisfiable() {
        let f = CnfFormula::from_clauses(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        );
        let r = sat_to_two_thirds_clique(&f);
        assert_eq!(r.graph.n() % 3, 0);
        let omega = clique::clique_number(&r.graph);
        assert_eq!(omega, two_thirds_target(&r));
        assert_eq!(omega, r.satisfiable_omega);
    }

    #[test]
    fn lemma4_falls_short_when_unsatisfiable() {
        let f = generators::contradiction_blocks(1);
        let r = sat_to_two_thirds_clique(&f);
        let omega = clique::clique_number(&r.graph);
        assert_eq!(omega, two_thirds_target(&r) - 1);
        assert_eq!(omega, r.predicted_omega(1));
    }

    #[test]
    fn omega_tracks_maxsat_exactly_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let f = generators::random_3sat(3, 4, &mut rng);
            let u = min_unsat(&f);
            for r in [sat_to_clique(&f), sat_to_two_thirds_clique(&f)] {
                let omega = clique::clique_number(&r.graph);
                assert_eq!(omega, r.predicted_omega(u), "u={u}");
            }
        }
    }

    #[test]
    fn padding_is_universal_and_complete() {
        let f = CnfFormula::from_clauses(2, vec![vec![Lit::pos(0), Lit::neg(1)]]);
        let r = sat_to_clique(&f);
        let n = r.graph.n();
        for p in r.padding_start..n {
            assert_eq!(r.graph.degree(p), n - 1, "padding vertex {p} must be universal");
        }
    }

    #[test]
    fn dense_degree_property_with_bounded_occurrences() {
        // With occurrence-bounded formulas the output graph has bounded
        // complement degree: each vertex misses at most
        // 1 + occurrences + a constant others (the paper's "degree ≥ |V|−14"
        // family, up to its constant bookkeeping).
        let f = generators::contradiction_blocks(2);
        assert!(f.max_occurrences() <= 13);
        let r = sat_to_clique(&f);
        let n = r.graph.n();
        let min_deg = r.graph.min_degree();
        // Every vertex of the VC graph has degree ≤ 1 + 13 + 2 = 16 there,
        // so it misses at most 16 neighbours here.
        assert!(min_deg >= n - 1 - 16, "min degree {min_deg} vs n {n}");
    }
}
