//! Appendix B — the reduction SPPCS → SQO−CP.
//!
//! Given an SPPCS instance `(p₁,c₁)…(p_m,c_m), L` in the WLOG form
//! `pᵢ ≥ 2, cᵢ ≥ 1` ([`crate::sppcs::Normalized`]), build a star query on
//! `m + 2` relations `R₀, R₁ … R_m, R_{m+1}` whose optimal plans *are*
//! subset choices:
//!
//! * joining satellite `Rᵢ` multiplies the intermediate by
//!   `nᵢ·sᵢ = pᵢ` whatever the method, but
//! * a **nested-loops** join of `Rᵢ` costs `n(W)·wᵢ ≈ n₀·k_s·J·(∏ p)·pᵢ` —
//!   cheap (scale `J`) *before* `R_{m+1}` is in, expensive after, while
//! * a **sort-merge** join of `Rᵢ` costs `A_i = k_s·n₀·J²·cᵢ` — the
//!   complement penalty `cᵢ` at scale `J²`;
//! * the forced **nested-loops** join of `R_{m+1}` (its pages are too many
//!   to sort inside the budget, its `w_{0,·}` too big to come first) costs
//!   `n(W)·J²·k_s = n₀·J²·k_s·∏_{i joined before} pᵢ` — the subset product
//!   at scale `J²`.
//!
//! With `M = n₀·J²·k_s·(L+1) − 1`, a plan under budget exists iff some `A`
//! has `∏_{A} pᵢ + Σ_{∉A} cᵢ ≤ L`. `J = (4·k_s·∏pᵢ)²` makes every
//! `J`-scale term vanish against the `J²`-scale accounting, and
//! `U = Σcᵢ + ∏pᵢ + 1` sizes `R_{m+1}` (and `n₀ = 5J³U`) so that every
//! deviating plan shape (satellite-first, `R_{m+1}` first or sorted, …)
//! overshoots `M` outright. The numeric constants follow the paper's
//! construction; the transcription of the appendix is partially corrupted,
//! so the accounting above (checked exhaustively in tests against the exact
//! star optimizer) is our certification of the constants.

use crate::sppcs::SppcsInstance;
use aqo_bignum::{BigRational, BigUint};
use aqo_core::sqo::{JoinMethod, SqoCpInstance, StarPlan};

/// Output of the Appendix B reduction.
#[derive(Clone, Debug)]
pub struct SqoReduction {
    /// The star-query instance.
    pub instance: SqoCpInstance,
    /// The decision bound `M`.
    pub budget: BigRational,
    /// `J = (4·k_s·∏pᵢ)²`.
    pub j: BigUint,
    /// `n₀ = 5J³U`.
    pub n0: BigUint,
}

/// The sort constant fixed by the paper.
pub const KS: u64 = 4;

/// Runs the reduction. Requires the WLOG form `pᵢ ≥ 2 ∧ cᵢ ≥ 1`
/// (normalize first).
pub fn reduce(sppcs: &SppcsInstance) -> SqoReduction {
    let m = sppcs.len();
    assert!(m >= 1, "need at least one pair");
    for (p, c) in &sppcs.pairs {
        assert!(*p >= BigUint::from(2u64), "requires p_i >= 2 (normalize first)");
        assert!(!c.is_zero(), "requires c_i >= 1 (normalize first)");
    }
    let prod_p: BigUint = sppcs.pairs.iter().fold(BigUint::one(), |acc, (p, _)| acc * p);
    let sum_c: BigUint = sppcs.pairs.iter().fold(BigUint::zero(), |acc, (_, c)| acc + c);
    let ks = BigUint::from(KS);
    let j = (BigUint::from(4u64) * &ks * &prod_p).pow(2);
    let u = &sum_c + &prod_p + BigUint::one();
    let n0 = BigUint::from(5u64) * j.pow(3) * &u;
    let j2 = j.pow(2);

    let len = m + 2;
    let mut tuples = Vec::with_capacity(len);
    let mut pages = Vec::with_capacity(len);
    let mut selectivity = Vec::with_capacity(len);
    let mut w = Vec::with_capacity(len);
    let mut w0 = Vec::with_capacity(len);

    // R_0.
    tuples.push(n0.clone());
    pages.push(n0.clone());
    selectivity.push(BigRational::one()); // unused slot
    w.push(BigUint::zero()); // unused slot
    w0.push(BigUint::zero()); // unused slot

    let m_plus_1 = BigUint::from((m + 1) as u64);
    // Satellites R_1 … R_m.
    for (p, c) in &sppcs.pairs {
        let n_i = &m_plus_1 * &n0 * &j2 * c;
        let b_i = &n0 * &j2 * c; // n_i·d/P with P = (m+1)d
        tuples.push(n_i.clone());
        pages.push(b_i);
        selectivity.push(BigRational::new(aqo_bignum::BigInt::from(p.clone()), n_i));
        w.push(&j * &ks * p);
        w0.push(n0.clone());
    }
    // R_{m+1}.
    let n_last = &m_plus_1 * &n0 * &j.pow(4) * &u;
    let b_last = &n0 * &j.pow(4) * &u;
    tuples.push(n_last.clone());
    pages.push(b_last);
    selectivity.push(BigRational::new(aqo_bignum::BigInt::from(j.clone()), n_last));
    w.push(&j2 * &ks);
    w0.push(n0.clone());

    let sort_cost: Vec<BigUint> = pages.iter().map(|b| b * &ks).collect();

    let instance = SqoCpInstance::new(KS, tuples, pages, sort_cost, selectivity, w, w0);
    let budget = BigRational::from(&n0 * &j2 * &ks * (&sppcs.l + BigUint::one()))
        - BigRational::one();
    SqoReduction { instance, budget, j, n0 }
}

/// The witness plan encoding subset `A` (bitmask over the `m` pairs):
/// `R₀` first; `A`'s satellites by nested loops; then `R_{m+1}` by nested
/// loops; then the complement by sort-merge.
pub fn witness_plan(red: &SqoReduction, mask: u64) -> StarPlan {
    let m = red.instance.m() - 1; // satellites 1..=m encode pairs; m+1 is the anchor
    let mut order = vec![0usize];
    let mut methods = Vec::with_capacity(m + 1);
    for i in 0..m {
        if mask >> i & 1 == 1 {
            order.push(i + 1);
            methods.push(JoinMethod::NestedLoops);
        }
    }
    order.push(m + 1);
    methods.push(JoinMethod::NestedLoops);
    for i in 0..m {
        if mask >> i & 1 == 0 {
            order.push(i + 1);
            methods.push(JoinMethod::SortMerge);
        }
    }
    StarPlan::new(order, methods)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sppcs::Normalized;
    use aqo_optimizer::star;

    fn inst(pairs: Vec<(u64, u64)>, l: u64) -> SppcsInstance {
        SppcsInstance {
            pairs: pairs
                .into_iter()
                .map(|(p, c)| (BigUint::from(p), BigUint::from(c)))
                .collect(),
            l: BigUint::from(l),
        }
    }

    #[test]
    fn witness_plan_costs_track_objective() {
        // For each subset, the witness plan's cost divided by n0·J²·ks must
        // be within 1 of the SPPCS objective.
        let s = inst(vec![(2, 3), (3, 1), (2, 2)], 10);
        let red = reduce(&s);
        let scale = BigRational::from(&red.n0 * &red.j.pow(2) * &BigUint::from(KS));
        for mask in 0u64..8 {
            let plan = witness_plan(&red, mask);
            let cost = red.instance.plan_cost(&plan);
            let objective = BigRational::from(s.objective(mask));
            let scaled = &cost / &scale;
            let diff = (&scaled - &objective).abs();
            assert!(diff < BigRational::one(), "mask {mask}: scaled {scaled:?} vs {objective:?}");
        }
    }

    #[test]
    fn equivalence_on_small_instances() {
        // The heart of Appendix B: SPPCS YES ⟺ optimal star plan ≤ M.
        let cases = vec![
            (vec![(2u64, 3u64), (3, 1)], 3u64),   // YES: A={} → 1+4=5 > 3? p=2·3: A={0}:2+1=3 ≤ 3 YES
            (vec![(2, 3), (3, 1)], 2),            // NO: min objective is 3
            (vec![(2, 1), (2, 1), (2, 1)], 4),    // YES: A={0,1}: 4+1=5? A={0}: 2+2=4 ≤ 4
            (vec![(2, 1), (2, 1), (2, 1)], 2),    // NO: min is 1+3=4? A=∅:1+3=4; A={i}:2+2=4; min 3? A=all:8. → NO
            (vec![(5, 2), (4, 7)], 9),            // A={0}:5+7=12; A={1}:4+2=6 ≤ 9 YES
            (vec![(5, 2), (4, 7)], 5),            // min 6 → NO
            (vec![(2, 10)], 2),                   // A={0}:2 ≤ 2 YES
            (vec![(2, 10)], 1),                   // min 2 → NO
        ];
        for (pairs, l) in cases {
            let s = inst(pairs.clone(), l);
            let expected = s.is_yes();
            let red = reduce(&s);
            let (_, opt) = star::optimize(&red.instance);
            let got = opt <= red.budget;
            assert_eq!(got, expected, "pairs {pairs:?} L={l}");
        }
    }

    #[test]
    fn equivalence_random_instances() {
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..12 {
            let m = 1 + (next() % 4) as usize;
            let pairs: Vec<(u64, u64)> =
                (0..m).map(|_| (2 + next() % 5, 1 + next() % 6)).collect();
            let l = next() % 30;
            let s = inst(pairs.clone(), l);
            let expected = s.is_yes();
            let red = reduce(&s);
            let (_, opt) = star::optimize(&red.instance);
            assert_eq!(opt <= red.budget, expected, "pairs {pairs:?} L={l}");
        }
    }

    #[test]
    fn full_chain_from_partition() {
        // PARTITION → SPPCS → SQO−CP, both polarities.
        use crate::partition::PartitionInstance;
        use crate::sppcs::partition_to_sppcs;
        for (items, expected) in [
            (vec![1u64, 2, 3], true),
            (vec![1, 3], false),
            (vec![2, 2], true),
            (vec![1, 1, 4], false),
        ] {
            let p = PartitionInstance::new(items.clone());
            assert_eq!(p.is_yes(), expected);
            let s = partition_to_sppcs(&p);
            let norm = match s.normalize() {
                Normalized::Trivial(ans) => {
                    assert_eq!(ans, expected);
                    continue;
                }
                Normalized::Instance(i) => i,
            };
            let red = reduce(&norm);
            let (_, opt) = star::optimize(&red.instance);
            assert_eq!(opt <= red.budget, expected, "items {items:?}");
        }
    }

    #[test]
    #[should_panic(expected = "normalize first")]
    fn unnormalized_rejected() {
        let s = inst(vec![(1, 3)], 5);
        let _ = reduce(&s);
    }
}
