//! §5 — the reduction `f_H` from ⅔CLIQUE to QO_H.
//!
//! Given a ⅔CLIQUE instance `G = (V, E)` with `|V| = n` (divisible by 3),
//! `f_H` builds a QO_H instance on `n + 1` relations:
//!
//! * query graph `G' = G` plus a fresh vertex `v₀` adjacent to all of `V`;
//! * `a = b²` and `t = b^{n−1}` (the paper writes `t = a^{(n−1)/2}`; taking
//!   a square root `b` keeps every quantity an exact integer for all `n`);
//! * selectivity `1/a` on `E`, `1/2` on every `{v₀, v_i}`;
//! * `t₀` large enough that `hjmin(t₀) > M`, so `R₀` can never be a hash
//!   join's inner relation and every feasible sequence starts with `v₀`
//!   (we take the smallest clean choice `t₀ = (M+1)^{⌈1/η⌉}`; the paper's
//!   `Θ(·)` sizing of `t₀` serves exactly this purpose);
//! * memory `M = (n/3 − 1)·t + 2·hjmin(t)`: a pipeline can hold `n/3 − 1`
//!   inner relations comfortably, and an `n/3`-join pipeline forces one
//!   (or, with `n/3 + 1` joins, two) of them down to minimum memory
//!   (Lemma 10).
//!
//! Packing a `2n/3` clique right after `v₀` keeps the five-pipeline plan of
//! Lemma 12 at `O(L(a,n))` with `L = t₀·a^{n²/9}`; without such a clique
//! every plan pays `Ω(G(a,n))` with `G = L·a^{Θ(n)}` (Lemmas 13–14).

use aqo_bignum::{BigRational, BigUint};
use aqo_core::qoh::{PipelineDecomposition, QoHInstance};
use aqo_core::{JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;

/// Output of `f_H`.
#[derive(Clone, Debug)]
pub struct FhReduction {
    /// The QO_H instance (relations `0..n` are `V`, relation `n` is `R₀`).
    pub instance: QoHInstance,
    /// Index of `v₀` (`= n`).
    pub v0: usize,
    /// Number of vertices of the source graph.
    pub n: usize,
    /// `b` (so `a = b²`).
    pub b: BigUint,
    /// `a = b²`.
    pub a: BigUint,
    /// `t = b^{n−1}`.
    pub t: BigUint,
    /// `t₀`.
    pub t0: BigUint,
}

/// Runs `f_H` on `g` (requires `n ≥ 6` and `3 | n`) with parameter `b ≥ 2`.
/// The paper takes `a = Ω(4ⁿ)`, i.e. `b ≥ 2ⁿ`, so that the edge
/// selectivities `1/a` dominate the `1/2` factors of the `v₀` edges; smaller
/// `b` still yields a valid instance, just a weaker gap.
pub fn reduce(g: &Graph, b: &BigUint) -> FhReduction {
    let n = g.n();
    assert!(n >= 6 && n.is_multiple_of(3), "f_H requires n >= 6 divisible by 3");
    assert!(*b >= BigUint::from(2u64), "b must be at least 2");
    let a = b * b;
    let t = b.pow(n as u64 - 1);

    // Query graph: G plus universal v0 at index n.
    let mut q = Graph::new(n + 1);
    for (u, v) in g.edges() {
        q.add_edge(u, v);
    }
    for v in 0..n {
        q.add_edge(v, n);
    }

    let eta = (1u32, 2u32);
    let hjmin_t = t.root_pow_ceil(eta.0, eta.1);
    let m_mem = BigUint::from((n / 3 - 1) as u64) * &t + BigUint::from(2u64) * &hjmin_t;
    // t0: smallest clean size with hjmin(t0) > M.
    let k = eta.1.div_ceil(eta.0) as u64;
    let t0 = (&m_mem + BigUint::one()).pow(k);

    let mut sizes = vec![t.clone(); n];
    sizes.push(t0.clone());

    let mut s = SelectivityMatrix::new();
    let inv_a = BigRational::recip_of(a.clone());
    let half = BigRational::recip_of(2u64);
    for (u, v) in g.edges() {
        s.set(u, v, inv_a.clone());
    }
    for v in 0..n {
        s.set(v, n, half.clone());
    }

    let instance = QoHInstance::with_eta(q, sizes, s, m_mem, eta);
    FhReduction { instance, v0: n, n, b: b.clone(), a, t, t0 }
}

/// `L(a, n) = t₀·a^{n²/9}` — the satisfiable-side cost scale (Lemma 12).
pub fn l_bound(red: &FhReduction) -> BigUint {
    let n = red.n as u64;
    &red.t0 * &red.a.pow(n * n / 9)
}

/// `G(a, n)`-style certified quantity: the Lemma 13 lower bound on
/// `N_{2n/3}(Z)` for every feasible sequence, given the exact clique number
/// `omega` of the source graph:
///
/// `N_{2n/3} ≥ t₀ · t^{2n/3} · a^{−D} · 2^{−2n/3}` with
/// `D = (2n/3)(2n/3−1)/2 − 2n/3 + min(omega, 2n/3)` (Lemma 7).
pub fn lemma13_n2n3_lower_bound(red: &FhReduction, omega: u64) -> BigRational {
    let k = 2 * red.n as u64 / 3;
    let d_max = k * (k - 1) / 2 - k + omega.min(k);
    let num = BigRational::from(&red.t0 * &red.t.pow(k));
    num * BigRational::recip_of(red.a.pow(d_max)) * BigRational::recip_of(BigUint::from(2u64).pow(k))
}

/// Lemma 12's witness: the sequence `v₀, C…, V∖C…` (clique `C` of size
/// `2n/3` right after `v₀`) with the five-pipeline decomposition
/// `P₁(1,1), P₂(2, n/3), P₃(n/3+1, 2n/3), P₄(2n/3+1, n−1), P₅(n, n)`.
pub fn lemma12_witness(
    red: &FhReduction,
    clique: &[usize],
) -> (JoinSequence, PipelineDecomposition) {
    let n = red.n;
    assert_eq!(clique.len(), 2 * n / 3, "witness clique must have size 2n/3");
    let mut order = Vec::with_capacity(n + 1);
    order.push(red.v0);
    order.extend_from_slice(clique);
    let mut in_clique = vec![false; n];
    for &v in clique {
        in_clique[v] = true;
    }
    order.extend((0..n).filter(|&v| !in_clique[v]));
    let z = JoinSequence::new(order);

    let third = n / 3;
    let mut fragments = vec![(1, 1), (2, third)];
    fragments.push((third + 1, 2 * third));
    if 2 * third < n - 1 {
        fragments.push((2 * third + 1, n - 1));
    }
    fragments.push((n, n));
    (z, PipelineDecomposition::new(n + 1, fragments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_graph::{clique, generators};
    use aqo_optimizer::pipeline;

    fn b_exp(n: usize) -> BigUint {
        // b = 2^n so a = 4^n, matching the paper's Ω(4^n).
        BigUint::from(2u64).pow(n as u64)
    }

    #[test]
    fn structure_and_feasibility() {
        let g = generators::dense_known_omega(6, 4);
        let red = reduce(&g, &b_exp(6));
        let inst = &red.instance;
        assert_eq!(inst.n(), 7);
        // R0 can never be built: hjmin(t0) > M.
        assert!(inst.hjmin(&red.t0) > *inst.memory());
        // Any sequence not starting with v0 is infeasible.
        let mut bad = vec![0usize];
        bad.push(red.v0);
        bad.extend(1..6);
        assert!(!inst.sequence_feasible(&JoinSequence::new(bad)));
        // v0-first sequences are feasible.
        let mut good = vec![red.v0];
        good.extend(0..6);
        assert!(inst.sequence_feasible(&JoinSequence::new(good)));
    }

    #[test]
    fn memory_fits_exactly_one_short_pipeline() {
        let g = generators::dense_known_omega(6, 4);
        let red = reduce(&g, &b_exp(6));
        let inst = &red.instance;
        let mut order = vec![red.v0];
        order.extend(0..6);
        let z = JoinSequence::new(order);
        // n/3 − 1 = 1 join with full memory: feasible with room to spare.
        assert!(inst.fragment_feasible(&z, (1, 1)));
        // n/3 + 1 = 3 joins: still feasible (two at hjmin), Lemma 10 case 3.
        assert!(inst.fragment_feasible(&z, (1, 3)));
        // n/3 + 2 = 4 joins of inner size t: needs 4·hjmin(t) > M? No:
        // M = t + 2·hjmin(t) and t is enormous, so even 6 fit at hjmin.
        assert!(inst.fragment_feasible(&z, (1, 6)));
    }

    #[test]
    fn witness_cost_within_constant_of_l() {
        let g = generators::dense_known_omega(6, 4);
        let red = reduce(&g, &b_exp(6));
        let c = clique::max_clique(&g);
        assert!(c.len() >= 4);
        let (z, decomp) = lemma12_witness(&red, &c[..4]);
        let cost = red.instance.plan_cost_optimal_alloc(&z, &decomp).expect("feasible witness");
        let l = BigRational::from(l_bound(&red));
        // O(L): the five pipelines each contribute ≤ O(L); 16 is generous.
        assert!(cost <= l * BigRational::from(16u64), "witness cost above 16·L");
    }

    #[test]
    fn lemma13_bound_holds_for_all_feasible_sequences() {
        // Small-clique graph: check the N_{2n/3} lower bound against the
        // actual intermediate sizes of every feasible sequence.
        let g = generators::turan(6, 3); // ω = 3 < 4 = 2n/3
        assert_eq!(clique::clique_number(&g), 3);
        let red = reduce(&g, &b_exp(6));
        let lb = lemma13_n2n3_lower_bound(&red, 3);
        let k = 4usize; // 2n/3
        for perm in aqo_core::join::permutations(6) {
            let mut order = vec![red.v0];
            order.extend(perm);
            let z = JoinSequence::new(order);
            let inter: Vec<BigRational> = red.instance.intermediates(&z);
            assert!(inter[k] >= lb, "N_4 below Lemma 13 bound for {z:?}");
        }
    }

    #[test]
    fn end_to_end_gap_small_n() {
        // Exact QO_H optima: ω = 4 = 2n/3 family vs ω = 3 family.
        //
        // At n = 6 the clique deficit is 1, so the certified gap is a single
        // power of a *minus* the `2^{Θ(n)}` slop of the v₀-edge
        // selectivities — exactly why the paper demands `a = Ω(4ⁿ)`. We take
        // `a = 4^{2n}` so the slop costs at most half of a's bits and assert
        // a gap of `√a`.
        let b = BigUint::from(2u64).pow(2 * 6);
        let g_yes = generators::dense_known_omega(6, 4);
        let g_no = generators::turan(6, 3);
        let red_yes = reduce(&g_yes, &b);
        let red_no = reduce(&g_no, &b);
        let opt_yes = pipeline::optimize_exhaustive(&red_yes.instance).expect("feasible");
        let opt_no = pipeline::optimize_exhaustive(&red_no.instance).expect("feasible");
        // At n = 6 the clique deficit is 1 and the pipeline DP can dodge the
        // single worst intermediate by fragment placement, so the realized
        // gap is `a^{1/2}` minus `2^{Θ(n)}` selectivity slop.
        let gap_bits = opt_no.cost.log2() - opt_yes.cost.log2();
        assert!(
            gap_bits >= 0.4 * red_yes.a.log2(),
            "gap too small: yes=2^{:.1} no=2^{:.1}",
            opt_yes.cost.log2(),
            opt_no.cost.log2()
        );
        // And the yes-optimum starts with v0 (forced) and is O(L).
        assert_eq!(opt_yes.sequence.at(0), red_yes.v0);
        let l = BigRational::from(l_bound(&red_yes));
        assert!(opt_yes.cost <= l * BigRational::from(16u64));
    }
}
