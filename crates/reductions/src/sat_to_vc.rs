//! The classical Garey–Johnson reduction 3SAT → VERTEX COVER, the first
//! hop of the paper's Lemma 3 (and, with different padding, Lemma 4).
//!
//! For a 3CNF formula with `v` variables and `m` clauses (each clause here
//! is padded/treated as exactly 3 literal slots):
//!
//! * one *variable gadget* per variable: vertices `x`, `¬x` joined by an
//!   edge (a cover must pick at least one);
//! * one *clause gadget* per clause: a triangle (a cover must pick at least
//!   two);
//! * each triangle corner is wired to the literal vertex it represents.
//!
//! A cover of size `v + 2m` exists iff the formula is satisfiable; more
//! precisely `vc(G) = v + 2m + (m − maxsat(F))`-ish is *not* exact in
//! general, but the two directions the paper uses are:
//!
//! * satisfiable ⟹ `vc(G) = v + 2m`;
//! * at most `m − u` clauses satisfiable ⟹ `vc(G) ≥ v + 2m + u`
//!   (each unsatisfied clause forces a third triangle pick or an extra
//!   literal pick).
//!
//! Both directions are verified mechanically in tests against the exact
//! solvers.

use aqo_graph::Graph;
use aqo_sat::CnfFormula;

/// Output of the reduction: the graph plus the vertex bookkeeping needed to
/// translate certificates.
#[derive(Clone, Debug)]
pub struct VcReduction {
    /// The produced graph.
    pub graph: Graph,
    /// Number of variables `v` of the source formula.
    pub num_vars: usize,
    /// Number of clauses `m` of the source formula.
    pub num_clauses: usize,
    /// The satisfiable-case cover size `v + 2m`.
    pub target_cover: usize,
}

impl VcReduction {
    /// Vertex id of the positive literal of variable `i`.
    pub fn pos_vertex(&self, i: usize) -> usize {
        2 * i
    }

    /// Vertex id of the negative literal of variable `i`.
    pub fn neg_vertex(&self, i: usize) -> usize {
        2 * i + 1
    }

    /// Vertex id of corner `slot ∈ {0,1,2}` of clause `c`'s triangle.
    pub fn triangle_vertex(&self, c: usize, slot: usize) -> usize {
        assert!(slot < 3);
        2 * self.num_vars + 3 * c + slot
    }

    /// Builds the size-`v + 2m` cover corresponding to a satisfying
    /// assignment: the true literal of each variable, plus, per clause, the
    /// two triangle corners whose literals are *not* the chosen satisfied
    /// one.
    pub fn cover_from_assignment(&self, f: &CnfFormula, assignment: &[bool]) -> Vec<usize> {
        assert!(f.is_satisfied_by(assignment), "assignment must satisfy the formula");
        let mut cover = Vec::with_capacity(self.target_cover);
        for (i, &val) in assignment.iter().enumerate() {
            cover.push(if val { self.pos_vertex(i) } else { self.neg_vertex(i) });
        }
        for (c, clause) in f.clauses().iter().enumerate() {
            let slots = clause_slots(clause);
            let sat_slot = slots
                .iter()
                .position(|l| l.eval(assignment))
                .expect("satisfied clause has a true literal");
            for slot in 0..3 {
                if slot != sat_slot {
                    cover.push(self.triangle_vertex(c, slot));
                }
            }
        }
        cover
    }
}

/// A clause viewed as exactly three literal slots (a 1- or 2-literal clause
/// repeats its last literal — the gadget still behaves correctly).
fn clause_slots(clause: &[aqo_sat::Lit]) -> [aqo_sat::Lit; 3] {
    assert!(!clause.is_empty() && clause.len() <= 3, "3CNF expected");
    let last = *clause.last().expect("nonempty");
    [
        clause.first().copied().unwrap_or(last),
        clause.get(1).copied().unwrap_or(last),
        last,
    ]
}

/// Runs the reduction.
pub fn reduce(f: &CnfFormula) -> VcReduction {
    assert!(f.is_3cnf(), "reduction requires 3CNF");
    let v = f.num_vars();
    let m = f.num_clauses();
    let n = 2 * v + 3 * m;
    let mut g = Graph::new(n);
    // Variable gadgets.
    for i in 0..v {
        g.add_edge(2 * i, 2 * i + 1);
    }
    // Clause triangles + wiring.
    for (c, clause) in f.clauses().iter().enumerate() {
        let base = 2 * v + 3 * c;
        g.add_edge(base, base + 1);
        g.add_edge(base + 1, base + 2);
        g.add_edge(base, base + 2);
        for (slot, lit) in clause_slots(clause).iter().enumerate() {
            let lit_vertex = if lit.positive { 2 * lit.var } else { 2 * lit.var + 1 };
            g.add_edge(base + slot, lit_vertex);
        }
    }
    VcReduction { graph: g, num_vars: v, num_clauses: m, target_cover: v + 2 * m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_graph::cover;
    use aqo_sat::{dpll, generators, maxsat, Lit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn satisfiable_formula_hits_target_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4 {
            let (f, w) = generators::planted_3sat(4, 5, &mut rng);
            let r = reduce(&f);
            let vc = cover::vertex_cover_number(&r.graph);
            assert_eq!(vc, r.target_cover, "satisfiable ⟹ vc = v + 2m");
            // The constructive cover is valid and tight.
            let c = r.cover_from_assignment(&f, &w);
            assert!(cover::is_vertex_cover(&r.graph, &c));
            assert_eq!(c.len(), r.target_cover);
        }
    }

    #[test]
    fn unsatisfiable_formula_needs_more() {
        // One contradiction block: exactly one clause unsatisfied.
        let f = generators::contradiction_blocks(1);
        assert!(!dpll::is_satisfiable(&f));
        let r = reduce(&f);
        let vc = cover::vertex_cover_number(&r.graph);
        assert!(vc > r.target_cover, "unsat ⟹ vc > v + 2m");
    }

    #[test]
    fn cover_deficit_lower_bounded_by_unsatisfied_clauses() {
        // vc(G) ≥ v + 2m + (m − maxsat): the Lemma 3 direction.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..4 {
            let f = generators::random_3sat(4, 10, &mut rng);
            let r = reduce(&f);
            let vc = cover::vertex_cover_number(&r.graph);
            let unsat = f.num_clauses() - maxsat::max_sat(&f).max_satisfied;
            assert!(
                vc >= r.target_cover + unsat,
                "vc {} < v+2m {} + unsat {}",
                vc,
                r.target_cover,
                unsat
            );
        }
    }

    #[test]
    fn short_clauses_handled() {
        // Unit and binary clauses exercise the slot-padding path.
        let f = aqo_sat::CnfFormula::from_clauses(
            2,
            vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]],
        );
        let r = reduce(&f);
        assert_eq!(r.graph.n(), 2 * 2 + 3 * 2);
        let vc = cover::vertex_cover_number(&r.graph);
        assert_eq!(vc, r.target_cover, "formula is satisfiable");
    }

    #[test]
    fn gadget_structure() {
        let f = aqo_sat::CnfFormula::from_clauses(
            3,
            vec![vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]],
        );
        let r = reduce(&f);
        // 6 literal vertices + 3 triangle vertices.
        assert_eq!(r.graph.n(), 9);
        // 3 variable edges + 3 triangle edges + 3 wires.
        assert_eq!(r.graph.m(), 9);
        assert!(r.graph.has_edge(r.pos_vertex(0), r.neg_vertex(0)));
        assert!(r.graph.has_edge(r.triangle_vertex(0, 0), r.pos_vertex(0)));
        assert!(r.graph.has_edge(r.triangle_vertex(0, 1), r.neg_vertex(1)));
        assert!(r.graph.has_edge(r.triangle_vertex(0, 2), r.pos_vertex(2)));
    }
}
