//! Certificate decoding — the constructive content of the hardness proofs.
//!
//! A many-one reduction shows more than a cost dichotomy: any algorithm
//! that *finds* a cheap plan can be turned into one that finds the hidden
//! combinatorial object. This module implements those decoders:
//!
//! * [`clique_from_sequence`] — from a join sequence of an `f_N` instance
//!   whose cost is below the Lemma 8 threshold for clique number `κ`, a
//!   clique of size `> κ` can be extracted from the length-`e` prefix
//!   (because a cheap `H_e` forces a dense prefix, and Lemma 7 in reverse
//!   forces a large clique inside it);
//! * [`subset_from_star_plan`] — from a within-budget SQO−CP star plan, the
//!   SPPCS subset `A` (the satellites joined by nested loops before the
//!   anchor relation `R_{m+1}`);
//! * [`partition_from_subset`] — lifts an SPPCS witness of a
//!   [`partition_to_sppcs`](crate::sppcs::partition_to_sppcs) instance back
//!   to a PARTITION witness.

use crate::fn_reduction::FnReduction;
use aqo_core::sqo::{JoinMethod, StarPlan};
use aqo_core::JoinSequence;
use aqo_graph::clique;

/// Density threshold reasoning: if the length-`e` prefix of `Z` has density
/// `D_e > e(e−1)/2 − e + κ`, then by Lemma 7 (contrapositive) the prefix
/// subgraph contains a clique larger than `κ`. This decoder measures the
/// density and, when the threshold is met, extracts a maximum clique of the
/// prefix (a set of `≤ e` vertices — exact search there is cheap relative
/// to the instance).
///
/// Returns `None` when the prefix is not dense enough to certify anything.
pub fn clique_from_sequence(red: &FnReduction, z: &JoinSequence, kappa: usize) -> Option<Vec<usize>> {
    let e = red.e as usize;
    assert!(e <= z.len(), "prefix length exceeds sequence");
    assert!(kappa >= 1 && e >= 2, "decoder needs kappa >= 1 and e >= 2");
    let prefix = z.prefix(e);
    let g = red.instance.graph();
    let d_e = g.induced_edge_count(prefix);
    let threshold = e * (e - 1) / 2 + kappa - e; // Lemma 7 bound at κ
    if d_e <= threshold {
        return None;
    }
    let sub = g.induced(prefix);
    let local = clique::max_clique(&sub);
    debug_assert!(local.len() > kappa, "Lemma 7 contrapositive violated");
    Some(local.into_iter().map(|i| prefix[i]).collect())
}

/// Decodes the SPPCS subset from a star plan: `A` is the set of satellites
/// joined by **nested loops** (anywhere in the plan), the complement the
/// sort-merged ones. The Appendix B accounting lower-bounds every plan's
/// cost by `n₀J²k_s·(∏_A p + Σ_Ā c)`, so a within-budget plan's decoded
/// subset always achieves the SPPCS bound. Returns pair indices (0-based).
pub fn subset_from_star_plan(plan: &StarPlan) -> Vec<usize> {
    let len = plan.order.len();
    let anchor = len - 1; // R_{m+1} has the largest id
    let mut subset = Vec::new();
    // A satellite in the leading position is classified by the method of
    // the first join (which joins R_0 to it).
    if plan.order[0] != 0 && plan.order[0] != anchor && plan.methods[0] == JoinMethod::NestedLoops
    {
        subset.push(plan.order[0] - 1);
    }
    for (pos, &rel) in plan.order.iter().enumerate().skip(1) {
        if rel == 0 || rel == anchor {
            continue;
        }
        if plan.methods[pos - 1] == JoinMethod::NestedLoops {
            subset.push(rel - 1);
        }
    }
    subset.sort_unstable();
    subset
}

/// Lifts an SPPCS witness bitmask of a `partition_to_sppcs` instance back
/// to PARTITION item indices: the pair order matches the item order, and
/// zero items (dropped from any equal-sum certificate by scaling) can go to
/// either side.
pub fn partition_from_subset(mask: u64, num_items: usize) -> Vec<usize> {
    (0..num_items).filter(|i| mask >> i & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sppcs::SppcsInstance;
    use crate::{fn_reduction, sqo_reduction};
    use aqo_bignum::BigUint;
    use aqo_graph::generators;
    use aqo_optimizer::{dp, star};

    #[test]
    fn cheap_sequences_decode_to_cliques() {
        // Optimal sequences of yes-instances are clique-first; the decoder
        // must recover a clique of more than the no-threshold size.
        let g = generators::dense_known_omega(12, 9);
        let red = fn_reduction::reduce(&g, &BigUint::from(4u64), 8);
        let opt = dp::optimize::<aqo_bignum::BigRational>(&red.instance, true).unwrap();
        let decoded = clique_from_sequence(&red, &opt.sequence, 6).expect("dense prefix");
        assert!(decoded.len() > 6);
        assert!(g.is_clique(&decoded));
    }

    #[test]
    fn sparse_prefixes_decode_to_none() {
        // A no-instance (ω = 5 < e) cannot produce a certifying prefix at
        // threshold κ = 5.
        let g = generators::dense_known_omega(12, 6);
        let red = fn_reduction::reduce(&g, &BigUint::from(4u64), 8);
        let opt = dp::optimize::<aqo_bignum::BigRational>(&red.instance, true).unwrap();
        // ω(G) = 6 means the prefix clique can be at most 6: asking for > 6
        // must fail, asking for > 5 may succeed.
        assert!(clique_from_sequence(&red, &opt.sequence, 6).is_none());
    }

    #[test]
    fn star_plan_subset_roundtrip() {
        let pairs = vec![
            (BigUint::from(2u64), BigUint::from(3u64)),
            (BigUint::from(3u64), BigUint::from(1u64)),
            (BigUint::from(2u64), BigUint::from(2u64)),
        ];
        let s = SppcsInstance { pairs, l: BigUint::from(7u64) };
        assert!(s.is_yes());
        let red = sqo_reduction::reduce(&s);
        let (plan, cost) = star::optimize(&red.instance);
        assert!(cost <= red.budget);
        let subset = subset_from_star_plan(&plan);
        // The decoded subset must achieve the SPPCS bound.
        let mask = subset.iter().fold(0u64, |m, &i| m | 1 << i);
        assert!(s.objective(mask) <= s.l, "decoded subset {subset:?} misses the bound");
    }

    #[test]
    fn partition_witness_lifts() {
        let idx = partition_from_subset(0b1010, 4);
        assert_eq!(idx, vec![1, 3]);
    }
}
