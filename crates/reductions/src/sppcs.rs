//! SPPCS — *Subset Product Plus Complement Sum* (paper Appendix A.4/A.5) —
//! and the reduction from PARTITION.
//!
//! An SPPCS instance is `m` pairs of non-negative integers
//! `(p₁,c₁) … (p_m,c_m)` and a bound `L`; the question is whether some
//! `A ⊆ [m]` satisfies `∏_{i∈A} pᵢ + Σ_{i∉A} cᵢ ≤ L` (empty product = 1).
//!
//! ## The PARTITION → SPPCS reduction
//!
//! The paper's Appendix A.5 encodes a PARTITION instance multiplicatively:
//! an element in `A` contributes a *factor* `≈ 2^q·e^{bᵢ/2K}` to the
//! product (so products track `e^{Σ_A bᵢ}`), while an element left out
//! contributes an additive penalty. The `⌈2^q·e^x⌉` rounding is exactly the
//! `f_q`/`g_q` fixed-point machinery, which we implement rigorously in
//! [`aqo_bignum::fixed`]. The numeric thresholds of the paper's instance,
//! however, are corrupted in the available transcription and the
//! equivalence proof lives in the unavailable technical report [7] — so the
//! certified reduction below uses *exact* powers of two in place of rounded
//! exponentials, which removes the rounding analysis while preserving the
//! multiplicative-encoding idea. Full proof:
//!
//! Given `b₁ … b_n` with `Σ bᵢ = 2T'` even and target `K = T'`, scale
//! `bᵢ' = 4bᵢ` and let `B = Σ bᵢ'/2 = 2·Σbᵢ` (so `B ≥ 4` unless all zero,
//! handled separately). Put
//!
//! * `pᵢ = 2^{bᵢ'}`,  `cᵢ = C·bᵢ'` with `C = 3·2^{B−2}`,
//! * `L = 2^B + C·B`.
//!
//! For `A` with `s = Σ_{i∈A} bᵢ'`, the objective is
//! `f(s) = 2^s + C·(2B − s)`. Then `f(B) = L`; for `s ≤ B−1`,
//! `f(s) − L = 2^s − 2^B + C(B−s) ≥ C − 2^B = 2^{B−2} > 0`; for `s ≥ B+1`,
//! `f(s) − L = 2^s − 2^B − C(s−B) ≥ 2^B(s−B) · (4/4) … ≥ (4·2^{B−2} − C)(s−B)
//! = 2^{B−2}(s−B) > 0` using `2^x − 1 ≥ x`. Hence the instance is YES iff
//! some subset of the `bᵢ'` sums to `B`, i.e. iff the PARTITION instance is
//! YES. ∎

use crate::partition::PartitionInstance;
use aqo_bignum::{BigUint, LogNum};

/// An SPPCS instance.
#[derive(Clone, Debug)]
pub struct SppcsInstance {
    /// The pairs `(pᵢ, cᵢ)`.
    pub pairs: Vec<(BigUint, BigUint)>,
    /// The bound `L`.
    pub l: BigUint,
}

impl SppcsInstance {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Objective value of a subset `A` (given as a bitmask).
    pub fn objective(&self, mask: u64) -> BigUint {
        let mut product = BigUint::one();
        let mut sum = BigUint::zero();
        for (i, (p, c)) in self.pairs.iter().enumerate() {
            if mask >> i & 1 == 1 {
                product *= p;
            } else {
                sum += c;
            }
        }
        product + sum
    }

    /// Exact decision by exhaustive subset search with a log-domain
    /// product prefilter (`m ≤ 30`).
    pub fn is_yes(&self) -> bool {
        self.witness().is_some()
    }

    /// A witness subset (bitmask) achieving the bound, if any.
    pub fn witness(&self) -> Option<u64> {
        let m = self.len();
        assert!(m <= 30, "exhaustive SPPCS solving is for m <= 30");
        let l_log = LogNum::from_log2(self.l.log2());
        let p_logs: Vec<LogNum> =
            self.pairs.iter().map(|(p, _)| LogNum::from_log2(p.log2())).collect();
        for mask in 0u64..(1 << m) {
            // Cheap filter: if the product alone already exceeds L by more
            // than the float error margin, skip the exact evaluation.
            let plog: LogNum = (0..m).filter(|i| mask >> i & 1 == 1).map(|i| p_logs[i]).product();
            if plog.log2() > l_log.log2() + 1.0 {
                continue;
            }
            if self.objective(mask) <= self.l {
                return Some(mask);
            }
        }
        None
    }
}

/// Result of [`SppcsInstance::normalize`].
#[derive(Clone, Debug)]
pub enum Normalized {
    /// The instance is decided outright by the preprocessing.
    Trivial(bool),
    /// An equivalent instance with every `pᵢ ≥ 2` and `cᵢ ≥ 1` (the
    /// paper's Appendix B "without loss of generality" assumption).
    Instance(SppcsInstance),
}

impl SppcsInstance {
    /// Normalizes to the Appendix B WLOG form, preserving the YES/NO
    /// answer:
    ///
    /// * some `pᵢ = 0` ⟹ taking `A = [m]` gives objective `0 ≤ L`: YES;
    /// * `pᵢ = 1` (and no zero `p`) ⟹ always include `i` (the product is
    ///   unchanged, excluding would add `cᵢ ≥ 0`): drop the pair;
    /// * `cᵢ = 0` with `pᵢ ≥ 2` ⟹ always exclude `i` (shrinking the
    ///   product never hurts, the penalty is 0): drop the pair;
    /// * nothing left ⟹ the objective is exactly `1`: YES iff `L ≥ 1`.
    pub fn normalize(&self) -> Normalized {
        if self.pairs.iter().any(|(p, _)| p.is_zero()) {
            return Normalized::Trivial(true);
        }
        let kept: Vec<(BigUint, BigUint)> = self
            .pairs
            .iter()
            .filter(|(p, c)| !p.is_one() && !c.is_zero())
            .cloned()
            .collect();
        if kept.is_empty() {
            return Normalized::Trivial(self.l >= BigUint::one());
        }
        Normalized::Instance(SppcsInstance { pairs: kept, l: self.l.clone() })
    }
}

/// The certified PARTITION → SPPCS reduction (proof in the module docs).
pub fn partition_to_sppcs(p: &PartitionInstance) -> SppcsInstance {
    let items = p.items();
    let total: u64 = items.iter().sum();
    if total == 0 {
        // All zeros: trivially YES. Emit a canonical YES instance.
        return SppcsInstance {
            pairs: vec![(BigUint::one(), BigUint::one())],
            l: BigUint::from(2u64),
        };
    }
    let b_scaled: Vec<u64> = items.iter().map(|&b| 4 * b).collect();
    let big_b = 2 * total; // Σ b'ᵢ / 2
    debug_assert!(big_b >= 4);
    let c_factor = BigUint::from(3u64) * (BigUint::one() << (big_b - 2));
    let pairs: Vec<(BigUint, BigUint)> = b_scaled
        .iter()
        .map(|&bp| (BigUint::one() << bp, &c_factor * &BigUint::from(bp)))
        .collect();
    let l = (BigUint::one() << big_b) + &c_factor * &BigUint::from(big_b);
    SppcsInstance { pairs, l }
}

/// The `g_q`-style multiplicative encoding of the paper's own construction:
/// `pᵢ = g_q(bᵢ) = ⌈2^q·e^{bᵢ/2K}⌉` (exact, via the rigorous fixed-point
/// exponential). Exposed so the experiments can demonstrate the rounding
/// behaviour the paper's `f_q`/`g_q` definitions are built for.
pub fn gq_encoded_factors(items: &[u64], q: u32) -> Vec<BigUint> {
    let two_k: u64 = items.iter().sum::<u64>().max(1);
    items.iter().map(|&b| aqo_bignum::fixed::g_q(b, two_k, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_sppcs(inst: &SppcsInstance) -> bool {
        (0u64..1 << inst.len()).any(|mask| inst.objective(mask) <= inst.l)
    }

    #[test]
    fn objective_conventions() {
        let inst = SppcsInstance {
            pairs: vec![
                (BigUint::from(3u64), BigUint::from(5u64)),
                (BigUint::from(4u64), BigUint::from(7u64)),
            ],
            l: BigUint::from(100u64),
        };
        // A = {}: product 1 + (5+7) = 13.
        assert_eq!(inst.objective(0), BigUint::from(13u64));
        // A = {0}: 3 + 7 = 10.
        assert_eq!(inst.objective(1), BigUint::from(10u64));
        // A = {0,1}: 12 + 0 = 12.
        assert_eq!(inst.objective(3), BigUint::from(12u64));
        assert!(inst.is_yes());
    }

    #[test]
    fn solver_matches_bruteforce() {
        let mut state = 31u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..20 {
            let m = 1 + (next() % 6) as usize;
            let pairs: Vec<(BigUint, BigUint)> = (0..m)
                .map(|_| (BigUint::from(1 + next() % 9), BigUint::from(next() % 9)))
                .collect();
            let l = BigUint::from(next() % 40);
            let inst = SppcsInstance { pairs, l };
            assert_eq!(inst.is_yes(), brute_sppcs(&inst));
        }
    }

    #[test]
    fn reduction_yes_instances() {
        for items in [vec![1u64, 1], vec![3, 1, 2, 2], vec![5, 5], vec![2, 2, 2, 2, 4, 4]] {
            let p = PartitionInstance::new(items.clone());
            assert!(p.is_yes(), "{items:?} should partition");
            let s = partition_to_sppcs(&p);
            assert!(s.is_yes(), "reduced instance must be YES for {items:?}");
        }
    }

    #[test]
    fn reduction_no_instances() {
        for items in [vec![1u64, 3], vec![2, 2, 5, 5, 2], vec![1, 1, 4]] {
            let p = PartitionInstance::new(items.clone());
            assert!(!p.is_yes(), "{items:?} should not partition");
            let s = partition_to_sppcs(&p);
            assert!(!s.is_yes(), "reduced instance must be NO for {items:?}");
        }
    }

    #[test]
    fn reduction_exhaustive_small_space() {
        // Every instance with 3 items drawn from 0..=4 and even total.
        for a in 0u64..=4 {
            for b in 0u64..=4 {
                for c in 0u64..=4 {
                    if (a + b + c) % 2 != 0 {
                        continue;
                    }
                    let p = PartitionInstance::new(vec![a, b, c]);
                    let s = partition_to_sppcs(&p);
                    assert_eq!(p.is_yes(), s.is_yes(), "items {:?}", [a, b, c]);
                }
            }
        }
    }

    #[test]
    fn all_zero_items() {
        let p = PartitionInstance::new(vec![0, 0, 0]);
        let s = partition_to_sppcs(&p);
        assert!(s.is_yes());
    }

    #[test]
    fn normalize_preserves_answer() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..30 {
            let m = 1 + (next() % 5) as usize;
            let pairs: Vec<(BigUint, BigUint)> = (0..m)
                .map(|_| (BigUint::from(next() % 6), BigUint::from(next() % 6)))
                .collect();
            let l = BigUint::from(next() % 30);
            let inst = SppcsInstance { pairs, l };
            let expected = inst.is_yes();
            match inst.normalize() {
                Normalized::Trivial(ans) => assert_eq!(ans, expected),
                Normalized::Instance(norm) => {
                    assert!(norm
                        .pairs
                        .iter()
                        .all(|(p, c)| *p >= BigUint::from(2u64) && !c.is_zero()));
                    assert_eq!(norm.is_yes(), expected);
                }
            }
        }
    }

    #[test]
    fn gq_factors_monotone() {
        let items = vec![1u64, 3, 5, 9];
        let f = gq_encoded_factors(&items, 24);
        for w in f.windows(2) {
            assert!(w[0] < w[1], "g_q must be strictly increasing in b");
        }
    }
}
