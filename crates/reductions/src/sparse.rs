//! §6 — sparse-query-graph variants `f_{N,e}` and `f_{H,e}`.
//!
//! The §4/§5 reductions emit *dense* query graphs (`n²/2 − Θ(n)` edges).
//! §6 shows the gap survives when the edge count is pinned to any function
//! `e(m)` with `m + Θ(m^τ) ≤ e(m) ≤ m(m−1)/2 − Θ(m^τ)`: blow the vertex
//! count up to `m = n^k` (`k = Θ(2/τ)`) by attaching an *auxiliary
//! connected graph* `G₂` that carries the surplus edges but, thanks to tiny
//! relation sizes (`u = βⁿ`) and mild selectivities (`1/β`), contributes
//! only an `α^{o(1)}`… `α^{O(1)}` factor to any join sequence's cost.
//!
//! Two fidelity notes:
//!
//! 1. The paper sets the bridge-edge access cost from the `V₁` side to
//!    `t/α`, which would violate the §2.1.1 constraint
//!    `w_{jk} ≥ t_j·s_{jk}` (the bridge selectivity is `1/β`). We use
//!    `t/β`, the least value the constraint admits — the change inflates
//!    one join's cost by at most `α/β`, absorbed by the `α^{O(1)}` slop
//!    the theorem already carries.
//! 2. The paper states the reachable window's upper end as
//!    `m(m−1)/2 − Θ(m^τ)`, but the construction as written (all surplus
//!    edges inside `G₂` on `m − n` vertices, plus one bridge) tops out at
//!    `|E₁| + (m−n)(m−n−1)/2 + 1 = m(m−1)/2 − Θ(m^{1+1/k})`. We implement
//!    the construction as written and document the achievable ceiling; the
//!    hardness claim is unaffected (it only needs *some* target in the
//!    window to be realizable for each τ, which the sparse end provides).

use aqo_bignum::{BigRational, BigUint};
use aqo_core::qoh::QoHInstance;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::Graph;

/// Builds the auxiliary connected graph `G₂` on `verts` vertices with
/// exactly `edges` edges (path + lexicographic fill).
fn auxiliary_graph(verts: usize, edges: usize) -> Graph {
    assert!(verts >= 1);
    let max = verts * (verts - 1) / 2;
    assert!(
        (verts.saturating_sub(1)..=max).contains(&edges),
        "auxiliary graph needs between {} and {max} edges, got {edges}",
        verts.saturating_sub(1)
    );
    let mut g = Graph::new(verts);
    for v in 1..verts {
        g.add_edge(v - 1, v);
    }
    'outer: for u in 0..verts {
        for v in u + 1..verts {
            if g.m() >= edges {
                break 'outer;
            }
            g.add_edge(u, v);
        }
    }
    debug_assert_eq!(g.m(), edges);
    g
}

/// Output of `f_{N,e}`.
#[derive(Clone, Debug)]
pub struct SparseFnReduction {
    /// The QO_N instance on `m = n^k` vertices.
    pub instance: QoNInstance,
    /// Source-graph vertex count `n`.
    pub n: usize,
    /// Blow-up exponent `k` (`m = n^k`).
    pub k: u32,
    /// `α` (selectivity denominator on original edges).
    pub alpha: BigUint,
    /// `β` (selectivity denominator on auxiliary edges).
    pub beta: BigUint,
    /// `t = α^e` (sizes of the `V₁` relations).
    pub t: BigUint,
    /// `u = βⁿ` (sizes of the `V₂` relations).
    pub u: BigUint,
    /// The size exponent `e` of `t = α^e`.
    pub e: u64,
}

/// Runs `f_{N,e}`: `g1` is the CLIQUE instance on `n` vertices; the output
/// query graph has `n^k` vertices and exactly `target_edges` edges
/// (`V₁ = 0..n`, `V₂ = n..n^k`, bridge `{0, n}`).
///
/// `alpha` and the size exponent `e` play the roles they do in
/// [`crate::fn_reduction`]; `beta` defaults to the paper's 4 when you pass
/// `BigUint::from(4u64)`. The paper's own scale is `α = β^{n^{2k+2}}`.
pub fn reduce_fn(
    g1: &Graph,
    k: u32,
    target_edges: usize,
    alpha: &BigUint,
    beta: &BigUint,
    e: u64,
) -> SparseFnReduction {
    let n = g1.n();
    assert!(n >= 2, "need at least two vertices");
    assert!(k >= 2, "blow-up exponent must be at least 2");
    let m = n.checked_pow(k).expect("m = n^k overflows usize");
    let v2 = m - n;
    assert!(v2 >= 1, "blow-up must add vertices");
    let e2 = target_edges
        .checked_sub(g1.m() + 1)
        .expect("target edge count must exceed |E1| + 1");
    let g2 = auxiliary_graph(v2, e2);

    let mut q = Graph::new(m);
    for (a, b) in g1.edges() {
        q.add_edge(a, b);
    }
    for (a, b) in g2.edges() {
        q.add_edge(n + a, n + b);
    }
    q.add_edge(0, n); // bridge v1–v2
    assert_eq!(q.m(), target_edges);

    let t = alpha.pow(e);
    let u = beta.pow(n as u64);
    let mut sizes = vec![t.clone(); n];
    sizes.extend(std::iter::repeat_with(|| u.clone()).take(v2));

    let mut s = SelectivityMatrix::new();
    let mut wm = AccessCostMatrix::new();
    let inv_alpha = BigRational::recip_of(alpha.clone());
    let inv_beta = BigRational::recip_of(beta.clone());
    let w_v1 = &t / alpha; // t/α on E1 edges
    let w_v1_bridge = &t / beta; // t/β on the bridge (see module docs)
    let w_v2 = &u / beta; // u/β on E2 + bridge (V2 side)
    for (a, b) in g1.edges() {
        s.set(a, b, inv_alpha.clone());
        wm.set(a, b, w_v1.clone());
        wm.set(b, a, w_v1.clone());
    }
    for (a, b) in g2.edges() {
        s.set(n + a, n + b, inv_beta.clone());
        wm.set(n + a, n + b, w_v2.clone());
        wm.set(n + b, n + a, w_v2.clone());
    }
    s.set(0, n, inv_beta.clone());
    wm.set(0, n, w_v1_bridge);
    wm.set(n, 0, w_v2.clone());

    let instance = QoNInstance::new(q, sizes, s, wm);
    SparseFnReduction { instance, n, k, alpha: alpha.clone(), beta: beta.clone(), t, u, e }
}

/// Output of `f_{H,e}`.
#[derive(Clone, Debug)]
pub struct SparseFhReduction {
    /// The QO_H instance on `n^k` vertices (`V₁ = 0..n`, `v₀ = n`,
    /// `V₂ = n+1..n^k`).
    pub instance: QoHInstance,
    /// Index of `v₀`.
    pub v0: usize,
    /// Source-graph vertex count `n`.
    pub n: usize,
    /// `b` with `α = b²`.
    pub b: BigUint,
    /// `α = b²`.
    pub alpha: BigUint,
    /// `t = b^{n−1}`.
    pub t: BigUint,
    /// `t₀` (the un-buildable centre relation).
    pub t0: BigUint,
}

/// Runs `f_{H,e}`: `g1` is the ⅔CLIQUE instance on `n` vertices
/// (`3 | n`, `n ≥ 6`); the query graph has `m = n^k` vertices and exactly
/// `target_edges` edges: `E₁ ∪ E₂ ∪ {bridge} ∪ {v₀–V₁ star}`.
pub fn reduce_fh(g1: &Graph, k: u32, target_edges: usize, b: &BigUint) -> SparseFhReduction {
    let n = g1.n();
    assert!(n >= 6 && n.is_multiple_of(3), "f_{{H,e}} requires n >= 6 divisible by 3");
    let m = n.checked_pow(k).expect("m = n^k overflows usize");
    let v2 = m - n - 1;
    assert!(v2 >= 1, "blow-up must add vertices beyond v0");
    let e2 = target_edges
        .checked_sub(g1.m() + n + 1)
        .expect("target edge count must exceed |E1| + n + 1");
    let g2 = auxiliary_graph(v2, e2);

    // Vertex layout: V1 = 0..n, v0 = n, V2 = n+1..m.
    let v0 = n;
    let mut q = Graph::new(m);
    for (a, b) in g1.edges() {
        q.add_edge(a, b);
    }
    for v in 0..n {
        q.add_edge(v, v0);
    }
    for (a, b) in g2.edges() {
        q.add_edge(n + 1 + a, n + 1 + b);
    }
    q.add_edge(0, n + 1); // bridge v1–v2
    assert_eq!(q.m(), target_edges);

    let alpha = b * b;
    let t = b.pow(n as u64 - 1);
    let two_n = BigUint::from(2u64).pow(n as u64);

    let eta = (1u32, 2u32);
    let hjmin_t = t.root_pow_ceil(eta.0, eta.1);
    let m_mem = BigUint::from((n / 3 - 1) as u64) * &t + BigUint::from(2u64) * &hjmin_t;
    let t0 = (&m_mem + BigUint::one()).pow(eta.1.div_ceil(eta.0) as u64);

    let mut sizes = vec![t.clone(); n];
    sizes.push(t0.clone());
    sizes.extend(std::iter::repeat_with(|| two_n.clone()).take(v2));

    let mut s = SelectivityMatrix::new();
    let inv_alpha = BigRational::recip_of(alpha.clone());
    let inv_two_n = BigRational::recip_of(two_n.clone());
    let half = BigRational::recip_of(2u64);
    for (a, b2) in g1.edges() {
        s.set(a, b2, inv_alpha.clone());
    }
    for v in 0..n {
        s.set(v, v0, inv_two_n.clone());
    }
    for (a, b2) in g2.edges() {
        s.set(n + 1 + a, n + 1 + b2, half.clone());
    }
    s.set(0, n + 1, half);

    let instance = QoHInstance::with_eta(q, sizes, s, m_mem, eta);
    SparseFhReduction { instance, v0, n, b: b.clone(), alpha, t, t0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::LogNum;
    use aqo_core::{CostScalar, JoinSequence};
    use aqo_graph::generators;
    use aqo_optimizer::dp;

    #[test]
    fn auxiliary_graph_contract() {
        for (v, e) in [(1, 0), (2, 1), (5, 4), (5, 7), (6, 15)] {
            let g = auxiliary_graph(v, e);
            assert_eq!(g.n(), v);
            assert_eq!(g.m(), e);
            assert!(g.is_connected());
        }
    }

    #[test]
    #[should_panic(expected = "auxiliary graph needs")]
    fn auxiliary_graph_too_few_edges() {
        auxiliary_graph(5, 3);
    }

    #[test]
    fn fn_sparse_shape() {
        let g1 = Graph::complete(3);
        let alpha = BigUint::from(4u64).pow(16);
        let beta = BigUint::from(4u64);
        let red = reduce_fn(&g1, 2, 12, &alpha, &beta, 2);
        let inst = &red.instance;
        assert_eq!(inst.n(), 9);
        assert_eq!(inst.graph().m(), 12);
        assert!(inst.graph().is_connected());
        // Edge count within the Theorem 16 window m + Θ(m^τ) .. m²/2 − Θ(m^τ).
        assert!(inst.graph().m() > inst.n());
        assert!(inst.graph().m() < inst.n() * (inst.n() - 1) / 2);
    }

    #[test]
    fn fn_sparse_gap_small_end_to_end() {
        // Same sparse frame around K₄ (ω = 4) vs the star S₄ (ω = 2). The
        // certified gap exponent is `e − ω_no − 1` and the upper frame needs
        // `ω_yes ≥ e`, so a clique deficit of at least 2 (here: e = 4,
        // deficit 2 → one full power of α) is required before any gap can
        // appear — which is exactly why the paper's Lemma 3 constants keep
        // `c − (c−d) = d = Θ(1)` a *fraction of n*, not a constant. α must
        // also dwarf the auxiliary slop `u^{|V₂|} ≈ 2^{96}` (the paper's
        // `α = β^{n^{2k+2}}` at full scale).
        let alpha = BigUint::from(4u64).pow(128);
        let beta = BigUint::from(4u64);
        let e = 4u64;
        let g_yes = Graph::complete(4);
        let g_no = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let red_yes = reduce_fn(&g_yes, 2, 30, &alpha, &beta, e);
        let red_no = reduce_fn(&g_no, 2, 30, &alpha, &beta, e);
        let opt_yes = dp::optimize::<LogNum>(&red_yes.instance, true).unwrap();
        let opt_no = dp::optimize::<LogNum>(&red_no.instance, true).unwrap();
        let gap_bits = CostScalar::log2(&opt_no.cost) - CostScalar::log2(&opt_yes.cost);
        let alpha_bits = alpha.log2();
        assert!(
            gap_bits >= 0.4 * alpha_bits,
            "sparse gap too small: {gap_bits:.1} bits vs α = {alpha_bits:.1} bits"
        );
    }

    #[test]
    fn fn_sparse_aux_cost_is_low_order() {
        // The exact optimum must be dominated by the V1 part: re-cost the
        // optimum exactly and compare against the dense f_N bound frame.
        let alpha = BigUint::from(4u64).pow(32);
        let beta = BigUint::from(4u64);
        let g1 = Graph::complete(3);
        let red = reduce_fn(&g1, 2, 12, &alpha, &beta, 2);
        let opt = dp::optimize::<LogNum>(&red.instance, true).unwrap();
        let k = crate::fn_reduction::k_bound(&alpha, 2);
        // The sparse optimum exceeds the dense-K frame by at most α^2
        // (auxiliary slop), and is at least w = t/α.
        let excess = CostScalar::log2(&opt.cost) - k.log2();
        assert!(excess <= 2.0 * alpha.log2(), "aux contribution too large");
    }

    #[test]
    fn fh_sparse_shape_and_feasibility() {
        let g1 = generators::dense_known_omega(6, 4);
        let b = BigUint::from(2u64).pow(6);
        // m = 36 vertices; edges: |E1| + 6 (star) + 1 (bridge) + |E2|.
        let target = g1.m() + 6 + 1 + 40;
        let red = reduce_fh(&g1, 2, target, &b);
        let inst = &red.instance;
        assert_eq!(inst.n(), 36);
        assert_eq!(inst.graph().m(), target);
        assert!(inst.graph().is_connected());
        // R0 still unbuildable; V2 relations tiny and always buildable.
        assert!(inst.hjmin(&red.t0) > *inst.memory());
        let two_n = BigUint::from(2u64).pow(6);
        assert!(inst.hjmin(&two_n) <= *inst.memory());
        // A v0-first sequence is feasible.
        let mut order = vec![red.v0];
        order.extend((0..inst.n()).filter(|&v| v != red.v0));
        assert!(inst.sequence_feasible(&JoinSequence::new(order)));
        // Any sequence with v0 later is not.
        let mut bad: Vec<usize> = (0..inst.n()).collect();
        bad.swap(0, red.v0);
        bad.swap(0, 1); // v0 now at position 1
        assert!(!inst.sequence_feasible(&JoinSequence::new(bad)));
    }

    #[test]
    fn fh_sparse_witness_cost_reasonable() {
        // A clique-first (after v0) sequence pipelined like Lemma 12 stays
        // within the L(a,n)·α^{O(1)} frame. α must dominate the auxiliary
        // product `2^{n·|V2|} = 2^{174}` (the paper's `α = Ω(4^{n^{2k+2}})`
        // serves exactly this); we take b = 2^{200}.
        let g1 = generators::dense_known_omega(6, 4);
        let b = BigUint::from(2u64).pow(200);
        let target = g1.m() + 6 + 1 + 40;
        let red = reduce_fh(&g1, 2, target, &b);
        let clique = aqo_graph::clique::max_clique(&g1);
        assert!(clique.len() >= 4);
        let mut order = vec![red.v0];
        order.extend_from_slice(&clique[..4]);
        order.extend((0..6).filter(|v| !clique[..4].contains(v)));
        order.extend(7..red.instance.n()); // V2 tail
        let z = JoinSequence::new(order);
        let (_, cost) =
            aqo_optimizer::pipeline::best_decomposition(&red.instance, &z).expect("feasible");
        // L-frame for the dense core: t0·α^{n²/9}; aux slop ≤ α^{1/2} at
        // this parameterization (2^{174+41} vs α = 2^{800}).
        let l_bits = red.t0.log2() + (36.0 / 9.0) * red.alpha.log2();
        assert!(
            cost.log2() <= l_bits + red.alpha.log2(),
            "witness cost {:.1} bits vs frame {:.1}",
            cost.log2(),
            l_bits
        );
    }
}
