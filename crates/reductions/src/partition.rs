//! The PARTITION problem (source of the Appendix A chain) and its exact
//! solver.
//!
//! The paper uses the variant with an *even* total: given non-negative
//! integers `b₁ … b_n` with `Σ bᵢ = 2K`, is there a subset summing to `K`?

/// A PARTITION instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionInstance {
    items: Vec<u64>,
}

impl PartitionInstance {
    /// Builds an instance; panics if the total is odd (the paper's variant
    /// presupposes an even total — double the items to convert).
    pub fn new(items: Vec<u64>) -> Self {
        let total: u64 = items.iter().sum();
        assert!(total.is_multiple_of(2), "PARTITION variant requires an even total");
        PartitionInstance { items }
    }

    /// Converts an arbitrary multiset into the even-total variant by
    /// doubling every element (the paper's own trick).
    pub fn from_arbitrary(items: Vec<u64>) -> Self {
        PartitionInstance { items: items.into_iter().map(|b| 2 * b).collect() }
    }

    /// The items.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// `K = (Σ bᵢ)/2`, the target subset sum.
    pub fn half_sum(&self) -> u64 {
        self.items.iter().sum::<u64>() / 2
    }

    /// Exact decision by subset-sum dynamic programming (pseudo-polynomial,
    /// bitset-packed): is there `A` with `Σ_{i∈A} bᵢ = K`?
    pub fn is_yes(&self) -> bool {
        self.witness().is_some()
    }

    /// A witness subset (indices) summing to `K`, if one exists.
    pub fn witness(&self) -> Option<Vec<usize>> {
        let k = self.half_sum() as usize;
        // reach[s] = Some(last item index used to reach sum s).
        let mut reach: Vec<Option<usize>> = vec![None; k + 1];
        let mut reachable = vec![false; k + 1];
        reachable[0] = true;
        for (idx, &b) in self.items.iter().enumerate() {
            let b = b as usize;
            if b > k {
                continue;
            }
            for s in (b..=k).rev() {
                if !reachable[s] && reachable[s - b] {
                    reachable[s] = true;
                    reach[s] = Some(idx);
                }
            }
        }
        if !reachable[k] {
            return None;
        }
        // Walk back. Zero items never change sums, so the walk uses only
        // positive items; k = 0 returns the empty set.
        let mut out = Vec::new();
        let mut s = k;
        while s > 0 {
            let idx = reach[s].expect("reachable sum has provenance");
            out.push(idx);
            s -= self.items[idx] as usize;
        }
        out.reverse();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_yes_instance() {
        let p = PartitionInstance::new(vec![3, 1, 1, 2, 2, 1]);
        assert_eq!(p.half_sum(), 5);
        assert!(p.is_yes());
        let w = p.witness().unwrap();
        let sum: u64 = w.iter().map(|&i| p.items()[i]).sum();
        assert_eq!(sum, 5);
    }

    #[test]
    fn classic_no_instance() {
        let p = PartitionInstance::new(vec![2, 2, 2, 5, 5]); // total 16, K=8
        assert!(!p.is_yes());
        assert!(p.witness().is_none());
    }

    #[test]
    fn zeros_and_empty() {
        assert!(PartitionInstance::new(vec![]).is_yes());
        assert!(PartitionInstance::new(vec![0, 0]).is_yes());
        let p = PartitionInstance::new(vec![0, 4, 4]);
        assert!(p.is_yes());
    }

    #[test]
    fn doubling_preserves_answer() {
        for items in [vec![1u64, 2, 3], vec![1, 1, 1], vec![7, 3, 2, 1, 1]] {
            let doubled = PartitionInstance::from_arbitrary(items.clone());
            // Brute-force the original "split into equal halves" question.
            let total: u64 = items.iter().sum();
            let brute = total.is_multiple_of(2)
                && (0u32..1 << items.len()).any(|mask| {
                    let s: u64 = items
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &b)| b)
                        .sum();
                    2 * s == total
                });
            assert_eq!(doubled.is_yes(), brute, "items {items:?}");
        }
    }

    #[test]
    fn dp_matches_bruteforce_random() {
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..30 {
            let n = 2 + (next() % 8) as usize;
            let items: Vec<u64> = (0..n).map(|_| next() % 12).collect();
            let total: u64 = items.iter().sum();
            if !total.is_multiple_of(2) {
                continue;
            }
            let p = PartitionInstance::new(items.clone());
            let brute = (0u32..1 << n).any(|mask| {
                let s: u64 = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &b)| b)
                    .sum();
                s == total / 2
            });
            assert_eq!(p.is_yes(), brute, "items {items:?}");
        }
    }
}
