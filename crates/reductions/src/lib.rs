//! Every reduction of *On the Complexity of Approximate Query Optimization*
//! (PODS 2002), as executable, mechanically testable code.
//!
//! The hardness chain:
//!
//! ```text
//! 3SAT ──(Garey–Johnson)──▶ VERTEX COVER ──(complement + padding)──▶ CLIQUE      (Lemma 3)
//!                                        └─(complement + universal)─▶ ⅔CLIQUE    (Lemma 4)
//! CLIQUE  ──f_N──▶ QO_N                                                          (§4, Thm 9)
//! ⅔CLIQUE ──f_H──▶ QO_H                                                          (§5, Thm 15)
//! CLIQUE  ──f_{N,e}──▶ sparse QO_N;   ⅔CLIQUE ──f_{H,e}──▶ sparse QO_H           (§6, Thms 16/17)
//! PARTITION ──▶ SPPCS ──▶ SQO−CP                                                 (Appendix A/B)
//! ```
//!
//! Each module provides (a) the instance constructor, (b) the witness the
//! paper's upper-bound lemma exhibits (clique-first join sequences, the
//! five-pipeline decomposition, …), and (c) exact evaluators for the bound
//! expressions (`K_{c,d}(a,n)`, `L(a,n)`, `G(a,n)`, the Lemma 8 lower
//! bound), so the experiments can certify every inequality in exact
//! arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clique_reduction;
pub mod decode;
pub mod fh_reduction;
pub mod fn_reduction;
pub mod partition;
pub mod sat_to_vc;
pub mod sparse;
pub mod sppcs;
pub mod sqo_reduction;
