//! §4 — the reduction `f_N` from CLIQUE to QO_N, with the paper's bound
//! expressions in exact arithmetic.
//!
//! Given a CLIQUE instance `G` on `n` vertices, `f_N` produces the QO_N
//! instance with
//!
//! * query graph `Q = G`;
//! * selectivity `s = 1/a` on every edge;
//! * relation sizes `t = a^e` where `e = (c − d/2)·n` (we take the integer
//!   exponent `e` as the parameter — the paper's `c, d` come from Lemma 3
//!   and make `e` an integer by choice of scale);
//! * access costs `w(j,k) = w = t/a` on edges (both directions), the
//!   non-edge default `t` otherwise.
//!
//! Under `f_N`, a cartesian-product-free sequence `Z` has
//! `H_i(Z) = w·a^{e·i − D_i(Z)}`: packing a clique into the prefix maximizes
//! `D_i` and crushes the cost. The two sides of the gap:
//!
//! * **Lemma 6 (upper)** — if `ω(G) ≥ cn ≥ e`, the clique-first sequence
//!   costs at most `K(a, e) = w·a^{e(e+1)/2 + 1}` (for `a ≥ 4` and the
//!   paper's size preconditions);
//! * **Lemma 7+8 (lower)** — *every* sequence costs at least
//!   `w·a^{e(e+1)/2 + e − ω}` whenever `ω = ω(G) ≤ e`, because Lemma 7
//!   bounds the prefix density `D_e ≤ e(e−1)/2 − e + ω`.
//!
//! The ratio between the two is `a^{e − ω − 1}`, which is `a^{Θ(n)}` when
//! `ω ≤ (c−d)n`: the hardness gap.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, JoinSequence, SelectivityMatrix};
use aqo_graph::{BitSet, Graph};

/// Output of `f_N`: the instance plus the reduction parameters needed by
/// the bound expressions.
#[derive(Clone, Debug)]
pub struct FnReduction {
    /// The QO_N instance.
    pub instance: QoNInstance,
    /// The selectivity denominator `a` (`α` in the paper).
    pub a: BigUint,
    /// The size exponent `e = (c − d/2)·n`.
    pub e: u64,
    /// `t = a^e`.
    pub t: BigUint,
    /// `w = t/a = a^{e−1}`.
    pub w: BigUint,
}

/// Runs `f_N` on `g` with parameters `a ≥ 2` and `e ≥ 1`.
pub fn reduce(g: &Graph, a: &BigUint, e: u64) -> FnReduction {
    assert!(*a >= BigUint::from(2u64), "a must be at least 2");
    assert!(e >= 1, "size exponent must be positive");
    let t = a.pow(e);
    let w = a.pow(e - 1);
    let n = g.n();
    let sizes = vec![t.clone(); n];
    let mut s = SelectivityMatrix::new();
    let mut wm = AccessCostMatrix::new();
    let sel = BigRational::recip_of(a.clone());
    for (u, v) in g.edges() {
        s.set(u, v, sel.clone());
        wm.set(u, v, w.clone());
        wm.set(v, u, w.clone());
    }
    let instance = QoNInstance::new(g.clone(), sizes, s, wm);
    FnReduction { instance, a: a.clone(), e, t, w }
}

/// `K(a, e) = w·a^{e(e+1)/2 + 1}` — the paper's `K_{c,d}(a, n)` with
/// `e = (c − d/2)n` (Lemma 6's upper bound for graphs with an `≥ e`-clique).
pub fn k_bound(a: &BigUint, e: u64) -> BigUint {
    let w = a.pow(e - 1);
    w * a.pow(e * (e + 1) / 2 + 1)
}

/// Lemma 7+8 certified lower bound on `C(Z)` for **every** join sequence of
/// the `f_N` instance, given the exact clique number `omega` of `g`:
/// `w·a^{e(e+1)/2 + e − min(omega, e)}`.
///
/// Validity: `C(Z) ≥ H_e(Z) ≥ w·a^{e·e − D_e(Z)}` (with or without
/// cartesian products — they only increase cost by a factor `a`), and by
/// Lemma 7 applied to the prefix subgraph,
/// `D_e(Z) ≤ e(e−1)/2 − e + min(omega, e)`. Requires `e ≤ n`.
pub fn lemma8_lower_bound(a: &BigUint, e: u64, omega: u64, n: u64) -> BigUint {
    assert!(e <= n, "prefix length e must fit in the graph");
    assert!(omega >= 1, "clique number of a nonempty graph is at least 1");
    let w = a.pow(e - 1);
    let omega_cap = omega.min(e);
    w * a.pow(e * (e + 1) / 2 + e - omega_cap)
}

/// The certified gap ratio `lower / K = a^{e − min(omega,e) − 1}` as an
/// exponent of `a` (may be negative, meaning no gap is certified).
pub fn certified_gap_exponent(e: u64, omega: u64) -> i64 {
    e as i64 - omega.min(e) as i64 - 1
}

/// Lemma 6's witness sequence: the vertices of `clique` first, then the
/// remaining vertices in a connected expansion order (each appended vertex
/// has an edge into the prefix when one exists — for the paper's connected
/// instances the result has no cartesian products).
pub fn lemma6_sequence(g: &Graph, clique: &[usize]) -> JoinSequence {
    assert!(g.is_clique(clique), "witness must be a clique");
    assert!(!clique.is_empty(), "empty witness");
    let n = g.n();
    let mut order: Vec<usize> = clique.to_vec();
    let mut placed = BitSet::new(n);
    for &v in clique {
        placed.insert(v);
    }
    while order.len() < n {
        // Prefer a vertex adjacent to the prefix.
        let next = (0..n)
            .filter(|&v| !placed.contains(v))
            .find(|&v| g.neighbors(v).intersection_len(&placed) > 0)
            .or_else(|| (0..n).find(|&v| !placed.contains(v)))
            .expect("vertices remain");
        order.push(next);
        placed.insert(next);
    }
    JoinSequence::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::LogNum;
    use aqo_core::CostScalar;
    use aqo_graph::{clique, generators};
    use aqo_optimizer::dp;

    fn a_of(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn instance_shape() {
        let g = generators::dense_known_omega(8, 5);
        let r = reduce(&g, &a_of(16), 4);
        assert_eq!(r.instance.n(), 8);
        assert_eq!(r.t, BigUint::from(16u64).pow(4));
        assert_eq!(r.w, BigUint::from(16u64).pow(3));
        // Every edge has w = t/a in both directions.
        for (u, v) in g.edges() {
            assert_eq!(r.instance.w(u, v), r.w);
            assert_eq!(r.instance.w(v, u), r.w);
        }
    }

    #[test]
    fn h_formula_matches_cost_model() {
        // For a cartesian-free sequence, H_i = w·a^{e·i − D_i}.
        let g = generators::dense_known_omega(7, 5);
        let e = 3u64;
        let a = a_of(8);
        let r = reduce(&g, &a, e);
        let witness = clique::max_clique(&g);
        let z = lemma6_sequence(&g, &witness);
        assert!(!r.instance.has_cartesian_product(&z));
        let cost = r.instance.cost::<BigRational>(&z);
        let d = r.instance.prefix_densities(&z);
        for i in 1..g.n() {
            let expected = BigRational::from(r.w.clone())
                * BigRational::from(a.pow(e * i as u64))
                * BigRational::recip_of(a.pow(d[i - 1] as u64));
            assert_eq!(cost.per_join[i - 1], expected, "H_{i}");
        }
    }

    #[test]
    fn clique_first_sequence_is_cheapest_shape() {
        // On a dense graph with a known clique, the Lemma 6 sequence must be
        // optimal (verified against the exact DP) — the clique prefix
        // maximizes selectivity cancellation.
        let g = generators::dense_known_omega(8, 6);
        let r = reduce(&g, &a_of(4), 4);
        let witness = clique::max_clique(&g);
        let z = lemma6_sequence(&g, &witness);
        let zc: BigRational = r.instance.total_cost(&z);
        let opt = dp::optimize::<BigRational>(&r.instance, true).unwrap();
        // The witness is within the a·H bound of optimal; on these dense
        // instances it is in fact optimal.
        assert_eq!(zc, opt.cost);
    }

    #[test]
    fn lemma8_bound_holds_against_exact_optimum() {
        // Graphs with small ω: every sequence costs at least the certified
        // bound.
        for (n, k) in [(7usize, 4usize), (8, 5), (9, 5)] {
            let g = generators::dense_known_omega(n, k);
            let omega = clique::clique_number(&g) as u64;
            assert_eq!(omega, k as u64);
            let e = (k + 1).min(n) as u64; // e > ω: gap regime
            let a = a_of(4);
            let r = reduce(&g, &a, e);
            let opt = dp::optimize::<BigRational>(&r.instance, true).unwrap();
            let lb = BigRational::from(lemma8_lower_bound(&a, e, omega, n as u64));
            assert!(opt.cost >= lb, "n={n} k={k}: optimum below certified bound");
        }
    }

    #[test]
    fn upper_bound_k_holds_when_clique_large() {
        // ω ≥ e: the Lemma 6 witness costs at most K(a, e) (a ≥ 4 as the
        // paper requires).
        for (n, k) in [(8usize, 6usize), (10, 7)] {
            let g = generators::dense_known_omega(n, k);
            let e = (k as u64).saturating_sub(1).max(1);
            let a = a_of(4);
            let r = reduce(&g, &a, e);
            let witness = clique::max_clique(&g);
            let z = lemma6_sequence(&g, &witness);
            let zc: BigRational = r.instance.total_cost(&z);
            let k_val = BigRational::from(k_bound(&a, e));
            assert!(zc <= k_val, "n={n} k={k}: witness cost exceeds K");
        }
    }

    #[test]
    fn gap_between_families() {
        // The end-to-end §4 statement in miniature: same n, same (a, e);
        // the big-clique family beats K while the small-clique family is
        // certified above K·a^{gap}.
        let n = 9usize;
        let e = 6u64;
        let a = a_of(4);
        let g_yes = generators::dense_known_omega(n, 7); // ω = 7 ≥ e
        let g_no = generators::dense_known_omega(n, 5); // ω = 5 < e
        let r_yes = reduce(&g_yes, &a, e);
        let r_no = reduce(&g_no, &a, e);
        let w_yes = clique::max_clique(&g_yes);
        let yes_cost: BigRational =
            r_yes.instance.total_cost(&lemma6_sequence(&g_yes, &w_yes));
        let k_val = BigRational::from(k_bound(&a, e));
        assert!(yes_cost <= k_val);
        let no_lb = BigRational::from(lemma8_lower_bound(&a, e, 5, n as u64));
        let gap_exp = certified_gap_exponent(e, 5);
        assert_eq!(gap_exp, 0); // e − ω − 1 = 0: bound equals K exactly here
        assert!(no_lb >= k_val);
        // Exact optimum of the no-instance sits above the yes witness by at
        // least one factor of a.
        let no_opt = dp::optimize::<BigRational>(&r_no.instance, true).unwrap();
        assert!(no_opt.cost >= yes_cost * BigRational::from(a.clone()));
    }

    #[test]
    fn log_backend_matches_exact_on_reduction_instances() {
        let g = generators::dense_known_omega(8, 6);
        let r = reduce(&g, &a_of(16), 5);
        let z = JoinSequence::identity(8);
        let exact: BigRational = r.instance.total_cost(&z);
        let log: LogNum = r.instance.total_cost(&z);
        assert!((CostScalar::log2(&exact) - CostScalar::log2(&log)).abs() < 1e-6);
    }
}
