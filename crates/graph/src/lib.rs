//! Undirected graphs and the exact combinatorial algorithms the paper's
//! reductions lean on.
//!
//! The reductions of PODS 2002 *Approximate Query Optimization* move through
//! CLIQUE and ⅔-CLIQUE; verifying them mechanically requires *exact* clique
//! numbers and vertex covers on instances of nontrivial size. This crate
//! provides:
//!
//! * [`Graph`] — an adjacency-bitset undirected graph;
//! * [`BitSet`] — the fixed-capacity bitset underlying it;
//! * [`clique`] — exact maximum clique (Tomita-style branch-and-bound with a
//!   greedy-colouring bound) and Bron–Kerbosch maximal-clique enumeration;
//! * [`cover`] — exact and 2-approximate vertex cover;
//! * [`generators`] — instance families (G(n,p), planted cliques, Turán
//!   graphs, trees, the paper's "degree ≥ n − 14" dense family).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod graph;

pub mod clique;
pub mod coloring;
pub mod io;
pub mod cover;
pub mod generators;

pub use bitset::BitSet;
pub use graph::Graph;

/// Lemma 7 of the paper: a graph with `n ≥ 1` vertices and clique number `ω`
/// has at most `n(n−1)/2 − n + ω` edges. Returns that bound.
pub fn lemma7_edge_bound(n: usize, omega: usize) -> usize {
    if n == 0 {
        return 0;
    }
    assert!(omega >= 1 && omega <= n, "clique number must be in [1, n]");
    n * (n - 1) / 2 + omega - n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma7_bound_examples() {
        // A complete graph: ω = n, bound = n(n−1)/2 exactly.
        assert_eq!(lemma7_edge_bound(5, 5), 10);
        // An edgeless graph has ω = 1.
        assert_eq!(lemma7_edge_bound(4, 1), 3);
        assert_eq!(lemma7_edge_bound(0, 0), 0);
    }
}
