//! A fixed-capacity bitset over `usize` indices.
//!
//! Used as the adjacency-row representation of [`Graph`](crate::Graph) and as
//! the candidate-set representation inside the clique branch-and-bound, where
//! word-parallel intersection is the inner loop.

use std::fmt;

/// A set of `usize` values drawn from `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Empty set with room for values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Full set `{0, …, capacity−1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity.div_ceil(64) {
            s.words[i] = u64::MAX;
        }
        if !capacity.is_multiple_of(64) && !s.words.is_empty() {
            let last = s.words.len() - 1;
            s.words[last] = (1u64 << (capacity % 64)) - 1;
        }
        s
    }

    /// Capacity (exclusive upper bound on members).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`. Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: usize) {
        assert!(v < self.capacity, "BitSet index {v} out of capacity {}", self.capacity);
        self.words[v / 64] |= 1 << (v % 64);
    }

    /// Removes `v` if present.
    #[inline]
    pub fn remove(&mut self, v: usize) {
        if v < self.capacity {
            self.words[v / 64] &= !(1 << (v % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        v < self.capacity && self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference `self \ other` (capacities must match).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Any member of the set, if nonempty.
    pub fn first(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterator over members in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter { set: self, word_idx: 0, word: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects members into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// Iterator over the members of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    word: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.word == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.word = self.set.words[self.word_idx];
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.word_idx * 64 + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitSetIter<'a>;
    fn into_iter(self) -> BitSetIter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in items {
            s.insert(v);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_has_exact_members() {
        for cap in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap={cap}");
            assert_eq!(s.to_vec(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 3, 5, 64, 100].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for v in [3usize, 5, 64, 99] {
            b.insert(v);
        }
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3, 5, 64]);
        assert_eq!(a.intersection_len(&b), 3);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 3, 5, 64, 99, 100]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 100]);
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [99usize, 0, 64, 63, 65].into_iter().collect();
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 99]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(BitSet::new(10).first(), None);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }
}
