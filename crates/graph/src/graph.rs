//! The undirected graph type shared by every reduction.

use crate::BitSet;
use std::fmt;

/// A simple undirected graph on vertices `0..n`, stored as adjacency bitsets.
///
/// Self-loops are rejected; parallel edges are impossible by construction.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<BitSet>,
    edges: usize,
}

impl Graph {
    /// Edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph { adj: (0..n).map(|_| BitSet::new(n)).collect(), edges: 0 }
    }

    /// Complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges
    }

    /// Adds the edge `{u, v}`. Panics on self-loops or out-of-range vertices;
    /// adding an existing edge is a no-op.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self-loop {u}");
        assert!(u < self.n() && v < self.n(), "edge ({u},{v}) out of range");
        if !self.adj[u].contains(v) {
            self.adj[u].insert(v);
            self.adj[v].insert(u);
            self.edges += 1;
        }
    }

    /// Removes the edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        if u < self.n() && v < self.n() && self.adj[u].contains(v) {
            self.adj[u].remove(v);
            self.adj[v].remove(u);
            self.edges -= 1;
        }
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && u < self.n() && self.adj[u].contains(v)
    }

    /// Neighbourhood of `v` as a bitset.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &BitSet {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Minimum degree over all vertices (`0` for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Iterator over edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n()).flat_map(move |u| self.adj[u].iter().filter(move |&v| v > u).map(move |v| (u, v)))
    }

    /// The complement graph (no self-loops).
    pub fn complement(&self) -> Graph {
        let n = self.n();
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The subgraph induced by `verts`; vertex `i` of the result corresponds
    /// to `verts[i]`.
    pub fn induced(&self, verts: &[usize]) -> Graph {
        let mut g = Graph::new(verts.len());
        for (i, &u) in verts.iter().enumerate() {
            for (j, &v) in verts.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Number of edges of the subgraph induced by `verts` (without
    /// materializing it).
    pub fn induced_edge_count(&self, verts: &[usize]) -> usize {
        let mut set = BitSet::new(self.n());
        for &v in verts {
            set.insert(v);
        }
        verts.iter().map(|&v| self.adj[v].intersection_len(&set)).sum::<usize>() / 2
    }

    /// Whether `verts` forms a clique.
    pub fn is_clique(&self, verts: &[usize]) -> bool {
        verts
            .iter()
            .enumerate()
            .all(|(i, &u)| verts[i + 1..].iter().all(|&v| self.has_edge(u, v)))
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = BitSet::new(n);
        let mut stack = vec![0usize];
        seen.insert(0);
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for v in self.adj[u].iter() {
                if !seen.contains(v) {
                    seen.insert(v);
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Disjoint union: the vertices of `other` are appended after `self`'s,
    /// with no edges between the two parts. Returns the offset at which
    /// `other`'s vertices begin.
    pub fn disjoint_union(&mut self, other: &Graph) -> usize {
        let offset = self.n();
        let n = offset + other.n();
        let mut adj: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for (u, row) in self.adj.iter().enumerate() {
            for v in row.iter() {
                adj[u].insert(v);
            }
        }
        for u in 0..other.n() {
            for v in other.adj[u].iter() {
                adj[offset + u].insert(offset + v);
            }
        }
        self.adj = adj;
        self.edges += other.edges;
        offset
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n(), self.m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 1); // duplicate is a no-op
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        g.remove_edge(0, 1);
        assert_eq!(g.m(), 1);
        assert!(!g.has_edge(0, 1));
        g.remove_edge(0, 1); // removing a non-edge is a no-op
        assert_eq!(g.m(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Graph::new(3).add_edge(1, 1);
    }

    #[test]
    fn complete_graph_counts() {
        let g = Graph::complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.min_degree(), 5);
        assert!(g.is_clique(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn complement_involution() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        assert_eq!(g.complement().complement(), g);
        assert_eq!(g.m() + g.complement().m(), 10);
    }

    #[test]
    fn induced_subgraph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let sub = g.induced(&[1, 2, 4]);
        // Edges among {1,2,4}: (1,2) and (1,4).
        assert_eq!(sub.m(), 2);
        assert!(sub.has_edge(0, 1)); // 1-2
        assert!(sub.has_edge(0, 2)); // 1-4
        assert!(!sub.has_edge(1, 2)); // 2-4 absent
        assert_eq!(g.induced_edge_count(&[1, 2, 4]), 2);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(path.is_connected());
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!split.is_connected());
    }

    #[test]
    fn edges_iterator_sorted_unique() {
        let g = Graph::from_edges(4, &[(2, 1), (0, 3), (1, 0)]);
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn disjoint_union_offsets() {
        let mut a = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(2, &[(0, 1)]);
        let off = a.disjoint_union(&b);
        assert_eq!(off, 3);
        assert_eq!(a.n(), 5);
        assert_eq!(a.m(), 3);
        assert!(a.has_edge(3, 4));
        assert!(!a.has_edge(2, 3));
        assert!(a.has_edge(0, 1));
    }
}
