//! Greedy graph colouring and degeneracy orderings.
//!
//! A proper colouring with `k` colours certifies `ω(G) ≤ k` — the upper
//! bound that drives the clique branch-and-bound — and the degeneracy
//! ordering both sharpens greedy colourings and bounds the clique number by
//! `degeneracy + 1`.

use crate::{BitSet, Graph};

/// Greedy colouring along the given vertex order; returns `colors[v]`
/// (0-based) — a proper colouring whatever the order.
pub fn greedy_coloring(g: &Graph, order: &[usize]) -> Vec<usize> {
    let n = g.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut colors = vec![usize::MAX; n];
    let mut forbidden = vec![false; n + 1];
    for &v in order {
        for u in g.neighbors(v).iter() {
            if colors[u] != usize::MAX {
                forbidden[colors[u]] = true;
            }
        }
        // At most n neighbours, so some colour in 0..=n is free.
        let c = (0..=n).find(|&c| !forbidden[c]).expect("some colour free");
        colors[v] = c;
        for u in g.neighbors(v).iter() {
            if colors[u] != usize::MAX {
                forbidden[colors[u]] = false;
            }
        }
    }
    colors
}

/// Number of colours used by a colouring.
pub fn color_count(colors: &[usize]) -> usize {
    colors.iter().map(|&c| c + 1).max().unwrap_or(0)
}

/// Whether `colors` is a proper colouring of `g`.
pub fn is_proper(g: &Graph, colors: &[usize]) -> bool {
    g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// The degeneracy ordering (repeatedly remove a minimum-degree vertex) and
/// the degeneracy `d` — every subgraph has a vertex of degree ≤ `d`, so
/// `ω(G) ≤ d + 1` and greedy colouring along the *reverse* ordering uses at
/// most `d + 1` colours.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = BitSet::new(n);
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed.contains(v))
            .min_by_key(|&v| degree[v])
            .expect("vertices remain");
        degeneracy = degeneracy.max(degree[v]);
        removed.insert(v);
        order.push(v);
        for u in g.neighbors(v).iter() {
            if !removed.contains(u) {
                degree[u] -= 1;
            }
        }
    }
    (order, degeneracy)
}

/// A cheap upper bound on the clique number:
/// `min(colour count of the degeneracy-greedy colouring, degeneracy + 1)`.
pub fn clique_upper_bound(g: &Graph) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let (mut order, degeneracy) = degeneracy_ordering(g);
    order.reverse();
    let colors = greedy_coloring(g, &order);
    color_count(&colors).min(degeneracy + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{clique, generators};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn colorings_are_proper() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let g = generators::gnp(20, 0.4, &mut rng);
            let order: Vec<usize> = (0..20).collect();
            let colors = greedy_coloring(&g, &order);
            assert!(is_proper(&g, &colors));
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = crate::Graph::complete(6);
        let colors = greedy_coloring(&g, &(0..6).collect::<Vec<_>>());
        assert_eq!(color_count(&colors), 6);
        assert_eq!(clique_upper_bound(&g), 6);
    }

    #[test]
    fn bipartite_two_colors() {
        // A path is 2-colourable with degeneracy 1.
        let mut g = crate::Graph::new(6);
        for v in 1..6 {
            g.add_edge(v - 1, v);
        }
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 6);
        assert_eq!(clique_upper_bound(&g), 2);
    }

    #[test]
    fn upper_bound_dominates_clique_number() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::gnp(16, 0.5, &mut rng);
            let omega = clique::clique_number(&g);
            let ub = clique_upper_bound(&g);
            assert!(ub >= omega, "bound {ub} below ω {omega}");
        }
    }

    #[test]
    fn turan_bound_quality() {
        // T(12, 4) has ω = 4; the colouring bound should land exactly there
        // (complete multipartite graphs colour perfectly).
        let g = generators::turan(12, 4);
        assert_eq!(clique_upper_bound(&g), 4);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(clique_upper_bound(&crate::Graph::new(0)), 0);
        assert_eq!(clique_upper_bound(&crate::Graph::new(5)), 1);
    }
}
