//! Graph instance families used by the experiments.

use crate::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// `G(n, p)` with a planted clique on `k` random vertices. Returns the graph
/// and the (sorted) planted vertex set.
pub fn planted_clique(n: usize, p: f64, k: usize, rng: &mut impl Rng) -> (Graph, Vec<usize>) {
    assert!(k <= n);
    let mut g = gnp(n, p, rng);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(rng);
    verts.truncate(k);
    verts.sort_unstable();
    for i in 0..k {
        for j in i + 1..k {
            g.add_edge(verts[i], verts[j]);
        }
    }
    (g, verts)
}

/// The Turán graph `T(n, r)`: the complete `r`-partite graph with balanced
/// parts. Its clique number is exactly `r` (for `r ≤ n`), and it maximizes
/// edges subject to containing no `K_{r+1}` — a sharp stress test for the
/// Lemma 7 edge bound.
pub fn turan(n: usize, r: usize) -> Graph {
    assert!(r >= 1);
    let mut g = Graph::new(n);
    let part = |v: usize| v % r;
    for u in 0..n {
        for v in u + 1..n {
            if part(u) != part(v) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A uniform random labelled tree on `n` vertices (via a Prüfer sequence).
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    if n == 2 {
        g.add_edge(0, 1);
        return g;
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("tree invariant");
        g.add_edge(leaf, v);
        degree[v] -= 1;
        if degree[v] == 1 {
            heap.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = heap.pop().unwrap();
    let std::cmp::Reverse(b) = heap.pop().unwrap();
    g.add_edge(a, b);
    g
}

/// A connected graph with exactly `m` edges: a random tree plus `m − (n−1)`
/// random extra edges. Panics unless `n−1 ≤ m ≤ n(n−1)/2`.
pub fn random_connected(n: usize, m: usize, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1);
    let max = n * (n - 1) / 2;
    assert!((n.saturating_sub(1)..=max).contains(&m), "m={m} out of range for n={n}");
    let mut g = random_tree(n, rng);
    while g.m() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// The paper's dense CLIQUE family: every vertex has degree `≥ n − 14`.
/// Construction: start from `K_n` and delete, per vertex, at most
/// `missing ≤ 13` random incident edges.
pub fn dense_min_degree_family(n: usize, missing: usize, rng: &mut impl Rng) -> Graph {
    assert!(missing <= 13, "paper family allows at most 13 missing edges per vertex");
    let mut g = Graph::complete(n);
    let mut removed = vec![0usize; n];
    let mut all_pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    all_pairs.shuffle(rng);
    for (u, v) in all_pairs {
        if removed[u] < missing && removed[v] < missing && rng.gen_bool(0.5) {
            g.remove_edge(u, v);
            removed[u] += 1;
            removed[v] += 1;
        }
    }
    g
}

/// A dense graph with precisely known clique number `k`: start from `K_n`
/// and detach each of the `n − k` tail vertices from exactly one head vertex
/// (round-robin).
///
/// Requires `n/2 ≤ k ≤ n`. Any clique then contains at most
/// `(n−k) + (k − d)` vertices where `d` is the number of distinct head
/// vertices excluded by its tail members; with `n − k ≤ k` the round-robin
/// assignment makes every tail vertex exclude a distinct head, so
/// `ω = max(k, (n−k) + k − (n−k)) = k`, witnessed by the head `K_k`.
pub fn dense_known_omega(n: usize, k: usize) -> Graph {
    assert!(2 <= k && k <= n && n - k <= k, "need n/2 <= k <= n");
    let mut g = Graph::complete(n);
    for v in k..n {
        // Detach v from exactly one clique vertex, chosen round-robin.
        g.remove_edge(v, v % k);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
    }

    #[test]
    fn planted_clique_is_clique() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, verts) = planted_clique(30, 0.3, 8, &mut rng);
        assert_eq!(verts.len(), 8);
        assert!(g.is_clique(&verts));
        assert!(clique::clique_number(&g) >= 8);
    }

    #[test]
    fn turan_clique_number() {
        for (n, r) in [(9, 3), (10, 4), (12, 2)] {
            let g = turan(n, r);
            assert_eq!(clique::clique_number(&g), r, "T({n},{r})");
        }
    }

    #[test]
    fn turan_is_lemma7_tight_for_r_eq_n_minus_1() {
        // T(n, n−1) is K_n minus a single edge: m = n(n−1)/2 − 1 and
        // ω = n−1, meeting Lemma 7's bound exactly.
        let n = 8;
        let g = turan(n, n - 1);
        let omega = clique::clique_number(&g);
        assert_eq!(omega, n - 1);
        assert_eq!(g.m(), crate::lemma7_edge_bound(n, omega));
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 10, 50] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(g.is_connected(), "n={n}");
        }
    }

    #[test]
    fn random_connected_edge_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_connected(12, 20, &mut rng);
        assert_eq!(g.m(), 20);
        assert!(g.is_connected());
    }

    #[test]
    fn dense_family_min_degree() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = dense_min_degree_family(40, 13, &mut rng);
        assert!(g.min_degree() >= 40 - 14);
    }

    #[test]
    fn dense_known_omega_exact() {
        for (n, k) in [(10, 5), (12, 8), (20, 10)] {
            let g = dense_known_omega(n, k);
            assert_eq!(clique::clique_number(&g), k, "n={n} k={k}");
            assert!(g.min_degree() >= n - 1 - n.div_ceil(k));
        }
    }
}
