//! Exact maximum-clique algorithms.
//!
//! [`max_clique`] is a Tomita-style branch-and-bound (the MCQ family): at
//! each node the candidate set is greedily coloured, the colour count is an
//! upper bound on how much the current clique can still grow, and candidates
//! are expanded in reverse colour order so the bound tightens fast. Dense
//! graphs — the paper's CLIQUE instances all have minimum degree `≥ n − 14`
//! — are exactly where the colouring bound shines.
//!
//! [`bron_kerbosch`] enumerates all maximal cliques (with pivoting), used by
//! tests as an independent oracle.

use crate::{BitSet, Graph};

/// Returns a maximum clique of `g` (vertex list, unsorted).
pub fn max_clique(g: &Graph) -> Vec<usize> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    // Greedy maximal clique to warm-start the branch-and-bound pruning.
    let mut best = greedy_clique(g);
    debug_assert!(g.is_clique(&best));
    let mut r = Vec::with_capacity(n);
    let p: Vec<usize> = (0..n).collect();
    expand(g, &mut r, p, &mut best);
    best
}

/// The clique number `ω(g)`.
pub fn clique_number(g: &Graph) -> usize {
    max_clique(g).len()
}

fn expand(g: &Graph, r: &mut Vec<usize>, p: Vec<usize>, best: &mut Vec<usize>) {
    if p.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    let (ordered, colors) = color_sort(g, &p);
    for i in (0..ordered.len()).rev() {
        if r.len() + colors[i] <= best.len() {
            return;
        }
        let v = ordered[i];
        let new_p: Vec<usize> =
            ordered[..i].iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        r.push(v);
        expand(g, r, new_p, best);
        r.pop();
    }
}

/// Greedy sequential colouring of the candidate set; returns the candidates
/// reordered by (ascending) colour together with their colour indices
/// (1-based). `colors[i]` bounds the largest clique inside
/// `{ordered[0..=i]}`.
fn color_sort(g: &Graph, p: &[usize]) -> (Vec<usize>, Vec<usize>) {
    // Colour classes are independent sets: iterate candidates by descending
    // degree (a good static order) and place each in the first class with no
    // neighbour.
    let mut by_degree: Vec<usize> = p.to_vec();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut classes: Vec<Vec<usize>> = Vec::new();
    'outer: for &v in &by_degree {
        for class in classes.iter_mut() {
            if class.iter().all(|&u| !g.has_edge(u, v)) {
                class.push(v);
                continue 'outer;
            }
        }
        classes.push(vec![v]);
    }
    let mut ordered = Vec::with_capacity(p.len());
    let mut colors = Vec::with_capacity(p.len());
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            ordered.push(v);
            colors.push(c + 1);
        }
    }
    (ordered, colors)
}

/// A maximal (not necessarily maximum) clique found greedily by descending
/// degree; cheap warm start for the branch-and-bound.
pub fn greedy_clique(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut clique: Vec<usize> = Vec::new();
    let mut allowed = BitSet::full(n);
    for v in order {
        if allowed.contains(v) {
            clique.push(v);
            allowed.intersect_with(g.neighbors(v));
        }
    }
    clique
}

/// Enumerates every maximal clique via Bron–Kerbosch with pivoting, invoking
/// `visit` on each. `visit` may return `false` to stop the enumeration early.
pub fn bron_kerbosch(g: &Graph, mut visit: impl FnMut(&[usize]) -> bool) {
    let n = g.n();
    let mut r = Vec::new();
    let p = BitSet::full(n);
    let x = BitSet::new(n);
    bk(g, &mut r, p, x, &mut visit);
}

fn bk(
    g: &Graph,
    r: &mut Vec<usize>,
    p: BitSet,
    mut x: BitSet,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if p.is_empty() && x.is_empty() {
        return visit(r);
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| g.neighbors(u).intersection_len(&p))
        .expect("P or X nonempty");
    let mut candidates = p.clone();
    candidates.difference_with(g.neighbors(pivot));
    let mut p = p;
    for v in candidates.to_vec() {
        let mut p2 = p.clone();
        p2.intersect_with(g.neighbors(v));
        let mut x2 = x.clone();
        x2.intersect_with(g.neighbors(v));
        r.push(v);
        let keep_going = bk(g, r, p2, x2, visit);
        r.pop();
        if !keep_going {
            return false;
        }
        p.remove(v);
        x.insert(v);
    }
    true
}

/// All maximal cliques, collected (use only on small graphs).
pub fn all_maximal_cliques(g: &Graph) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    bron_kerbosch(g, |c| {
        let mut c = c.to_vec();
        c.sort_unstable();
        out.push(c);
        true
    });
    out
}

/// Whether `g` contains a clique of size at least `k` (early-exit search).
pub fn has_clique_of_size(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k > g.n() {
        return false;
    }
    // Run the BnB but stop as soon as the bound is reached.
    let mut best: Vec<usize> = Vec::new();
    let mut r = Vec::new();
    let p: Vec<usize> = (0..g.n()).collect();
    expand_until(g, &mut r, p, &mut best, k);
    best.len() >= k
}

fn expand_until(g: &Graph, r: &mut Vec<usize>, p: Vec<usize>, best: &mut Vec<usize>, target: usize) {
    if best.len() >= target {
        return;
    }
    if p.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    let (ordered, colors) = color_sort(g, &p);
    for i in (0..ordered.len()).rev() {
        if best.len() >= target || r.len() + colors[i] <= best.len() {
            return;
        }
        let v = ordered[i];
        let new_p: Vec<usize> =
            ordered[..i].iter().copied().filter(|&u| g.has_edge(u, v)).collect();
        r.push(v);
        expand_until(g, r, new_p, best, target);
        r.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Brute-force clique number by subset enumeration (n ≤ ~20).
    fn brute_omega(g: &Graph) -> usize {
        let n = g.n();
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let verts: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if verts.len() > best && g.is_clique(&verts) {
                best = verts.len();
            }
        }
        best
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(max_clique(&Graph::new(0)), Vec::<usize>::new());
        assert_eq!(clique_number(&Graph::new(5)), 1);
        assert_eq!(clique_number(&Graph::complete(7)), 7);
    }

    #[test]
    fn petersen_graph_omega_2() {
        // The Petersen graph is triangle-free.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut edges = Vec::new();
        edges.extend(outer);
        edges.extend(spokes);
        edges.extend(inner);
        let g = Graph::from_edges(10, &edges);
        assert_eq!(clique_number(&g), 2);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        // Deterministic pseudo-random family.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in [5usize, 8, 10, 12] {
            for _ in 0..5 {
                let mut g = Graph::new(n);
                for u in 0..n {
                    for v in u + 1..n {
                        if next() % 100 < 55 {
                            g.add_edge(u, v);
                        }
                    }
                }
                let got = max_clique(&g);
                assert!(g.is_clique(&got), "returned set must be a clique");
                assert_eq!(got.len(), brute_omega(&g), "n={n}");
            }
        }
    }

    #[test]
    fn bron_kerbosch_triangle_plus_edge() {
        // Triangle {0,1,2} plus pendant edge {2,3}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut cliques = all_maximal_cliques(&g);
        cliques.sort();
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![2, 3]]);
    }

    #[test]
    fn bron_kerbosch_agrees_with_bnb() {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..10 {
            let n = 9;
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 10 < 6 {
                        g.add_edge(u, v);
                    }
                }
            }
            let bk_max = all_maximal_cliques(&g).iter().map(Vec::len).max().unwrap();
            assert_eq!(bk_max, clique_number(&g));
        }
    }

    #[test]
    fn has_clique_early_exit() {
        let g = Graph::complete(10);
        assert!(has_clique_of_size(&g, 10));
        assert!(!has_clique_of_size(&g, 11));
        assert!(has_clique_of_size(&g, 0));
        let sparse = Graph::from_edges(5, &[(0, 1)]);
        assert!(has_clique_of_size(&sparse, 2));
        assert!(!has_clique_of_size(&sparse, 3));
    }

    #[test]
    fn greedy_clique_is_clique() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let c = greedy_clique(&g);
        assert!(g.is_clique(&c));
        assert!(c.len() >= 2);
    }

    #[test]
    fn dense_paper_family_exact() {
        // Minimum degree >= n - 14 family: complete graph minus a sparse set.
        let n = 40;
        let mut g = Graph::complete(n);
        // Remove a perfect matching: omega drops to exactly n - n/2 ... no:
        // removing a perfect matching leaves omega = n/2? No — a clique may
        // use one endpoint of each removed edge, so omega = n/2 + ... Let's
        // verify against an independent upper-bound argument instead:
        // removing matching edges (2i, 2i+1) means a clique picks at most one
        // of each pair, so omega <= n/2; picking all evens gives omega = n/2.
        for i in 0..n / 2 {
            g.remove_edge(2 * i, 2 * i + 1);
        }
        assert!(g.min_degree() >= n - 14);
        assert_eq!(clique_number(&g), n / 2);
    }

    #[test]
    fn lemma7_holds_on_samples() {
        let mut state = 0xABCDu64;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            state >> 33
        };
        for _ in 0..8 {
            let n = 10;
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 10 < 7 {
                        g.add_edge(u, v);
                    }
                }
            }
            let omega = clique_number(&g);
            assert!(g.m() <= crate::lemma7_edge_bound(n, omega));
        }
    }
}
