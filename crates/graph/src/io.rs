//! DIMACS graph serialization (the `p edge n m` format of the clique/
//! colouring benchmark suites), so reduction outputs can be fed to external
//! clique solvers and external benchmarks pulled in.

use crate::Graph;
use std::fmt::Write as _;

/// Serializes in DIMACS edge format (1-based vertices).
pub fn to_dimacs(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p edge {} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u + 1, v + 1);
    }
    out
}

/// Error from [`from_dimacs`] — the definition shared with
/// `aqo_sat::dimacs` (this parser uses the header/edge/vertex variants).
pub use aqo_dimacs::DimacsError;

/// Parses DIMACS edge format (`c` comments tolerated; duplicate edges
/// collapse, as DIMACS clique instances commonly contain them — the header
/// count is checked against *distinct* edges only when they match exactly,
/// mirroring common tool behaviour: strictly, we accept `found ≤ declared`).
pub fn from_dimacs(input: &str) -> Result<Graph, DimacsError> {
    let mut g: Option<Graph> = None;
    let mut declared = 0usize;
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first() {
            Some(&"p") => {
                if parts.len() != 4 || (parts[1] != "edge" && parts[1] != "col") {
                    return Err(DimacsError::BadLine(line.to_string()));
                }
                let n: usize =
                    parts[2].parse().map_err(|_| DimacsError::BadLine(line.to_string()))?;
                declared = parts[3].parse().map_err(|_| DimacsError::BadLine(line.to_string()))?;
                g = Some(Graph::new(n));
            }
            Some(&"e") => {
                let g = g.as_mut().ok_or(DimacsError::MissingHeader)?;
                if parts.len() != 3 {
                    return Err(DimacsError::BadLine(line.to_string()));
                }
                let u: usize =
                    parts[1].parse().map_err(|_| DimacsError::BadLine(line.to_string()))?;
                let v: usize =
                    parts[2].parse().map_err(|_| DimacsError::BadLine(line.to_string()))?;
                if u == 0 || v == 0 || u > g.n() || v > g.n() {
                    return Err(DimacsError::VertexOutOfRange(u.max(v)));
                }
                g.add_edge(u - 1, v - 1);
            }
            _ => return Err(DimacsError::BadLine(line.to_string())),
        }
    }
    let g = g.ok_or(DimacsError::MissingHeader)?;
    if g.m() > declared {
        return Err(DimacsError::EdgeCountMismatch { declared, found: g.m() });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let g = generators::gnp(15, 0.4, &mut rng);
            let text = to_dimacs(&g);
            let h = from_dimacs(&text).unwrap();
            assert_eq!(g, h);
        }
    }

    #[test]
    fn parses_comments_and_duplicates() {
        let text = "c clique instance\np edge 3 2\ne 1 2\ne 2 1\ne 2 3\n";
        let g = from_dimacs(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn error_cases() {
        assert_eq!(from_dimacs("e 1 2\n"), Err(DimacsError::MissingHeader));
        assert!(matches!(from_dimacs("p edge x 1\n"), Err(DimacsError::BadLine(_))));
        assert_eq!(
            from_dimacs("p edge 2 1\ne 1 3\n"),
            Err(DimacsError::VertexOutOfRange(3))
        );
        assert!(matches!(
            from_dimacs("p edge 3 1\ne 1 2\ne 2 3\n"),
            Err(DimacsError::EdgeCountMismatch { declared: 1, found: 2 })
        ));
    }

    #[test]
    fn header_format() {
        let g = Graph::complete(4);
        let text = to_dimacs(&g);
        assert!(text.starts_with("p edge 4 6\n"));
    }
}
