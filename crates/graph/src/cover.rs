//! Vertex cover: exact minimum (via the clique/independent-set duality) and
//! the classical matching-based 2-approximation.
//!
//! The Garey–Johnson 3SAT → VERTEX COVER reduction (used by Lemma 3 of the
//! paper) produces graphs whose cover size certifies satisfiability; tests
//! check those certificates with the exact solver here.

use crate::{clique, Graph};

/// Whether `verts` covers every edge of `g`.
pub fn is_vertex_cover(g: &Graph, verts: &[usize]) -> bool {
    let mut in_cover = vec![false; g.n()];
    for &v in verts {
        if v < g.n() {
            in_cover[v] = true;
        }
    }
    g.edges().all(|(u, v)| in_cover[u] || in_cover[v])
}

/// An exact minimum vertex cover.
///
/// Uses the duality `min-VC(G) = n − max-IS(G) = n − ω(Ḡ)`: a maximum clique
/// of the complement is a maximum independent set, and its complement set is
/// a minimum cover.
pub fn min_vertex_cover(g: &Graph) -> Vec<usize> {
    let comp = g.complement();
    let is: Vec<usize> = clique::max_clique(&comp);
    let in_is: Vec<bool> = {
        let mut v = vec![false; g.n()];
        for &u in &is {
            v[u] = true;
        }
        v
    };
    (0..g.n()).filter(|&v| !in_is[v]).collect()
}

/// The minimum vertex cover size.
pub fn vertex_cover_number(g: &Graph) -> usize {
    g.n() - clique::clique_number(&g.complement())
}

/// Matching-based 2-approximation: repeatedly pick an uncovered edge and add
/// both endpoints. Guaranteed `|cover| ≤ 2·OPT`.
pub fn approx_vertex_cover(g: &Graph) -> Vec<usize> {
    let mut in_cover = vec![false; g.n()];
    let mut cover = Vec::new();
    for (u, v) in g.edges() {
        if !in_cover[u] && !in_cover[v] {
            in_cover[u] = true;
            in_cover[v] = true;
            cover.push(u);
            cover.push(v);
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_min_vc(g: &Graph) -> usize {
        let n = g.n();
        (0u32..1 << n)
            .filter(|mask| {
                let verts: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                is_vertex_cover(g, &verts)
            })
            .map(|mask| mask.count_ones() as usize)
            .min()
            .unwrap()
    }

    #[test]
    fn star_cover_is_center() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(vertex_cover_number(&g), 1);
        let c = min_vertex_cover(&g);
        assert!(is_vertex_cover(&g, &c));
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn cycle_cover() {
        // C5 needs ceil(5/2) = 3 vertices.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(vertex_cover_number(&g), 3);
    }

    #[test]
    fn exact_matches_brute_force() {
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in [6usize, 8, 10] {
            for _ in 0..5 {
                let mut g = Graph::new(n);
                for u in 0..n {
                    for v in u + 1..n {
                        if next() % 10 < 4 {
                            g.add_edge(u, v);
                        }
                    }
                }
                let exact = min_vertex_cover(&g);
                assert!(is_vertex_cover(&g, &exact));
                assert_eq!(exact.len(), brute_min_vc(&g), "n={n}");
            }
        }
    }

    #[test]
    fn approx_within_factor_two() {
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            state >> 33
        };
        for _ in 0..10 {
            let n = 12;
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 10 < 3 {
                        g.add_edge(u, v);
                    }
                }
            }
            let approx = approx_vertex_cover(&g);
            assert!(is_vertex_cover(&g, &approx));
            let opt = vertex_cover_number(&g);
            assert!(approx.len() <= 2 * opt, "approx {} > 2*{}", approx.len(), opt);
        }
    }

    #[test]
    fn empty_graph_empty_cover() {
        let g = Graph::new(4);
        assert_eq!(vertex_cover_number(&g), 0);
        assert!(min_vertex_cover(&g).is_empty());
        assert!(approx_vertex_cover(&g).is_empty());
    }
}
