//! Property tests for the graph substrate: structural invariants, clique
//! oracle agreement, and the paper's Lemma 7 edge bound.

use aqo_graph::{clique, cover, generators, lemma7_edge_bound, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random graph on 1..=10 vertices given by an edge mask.
fn small_graph() -> impl Strategy<Value = Graph> {
    (1usize..=10, any::<u64>()).prop_map(|(n, mask)| {
        let mut g = Graph::new(n);
        let mut bit = 0;
        for u in 0..n {
            for v in u + 1..n {
                if mask >> (bit % 64) & 1 == 1 {
                    g.add_edge(u, v);
                }
                bit += 7; // stride to decorrelate
            }
        }
        g
    })
}

fn brute_omega(g: &Graph) -> usize {
    let n = g.n();
    let mut best = 0;
    for mask in 0u32..(1 << n) {
        let verts: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        if verts.len() > best && g.is_clique(&verts) {
            best = verts.len();
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn complement_involution(g in small_graph()) {
        prop_assert_eq!(&g.complement().complement(), &g);
    }

    #[test]
    fn complement_edge_counts(g in small_graph()) {
        let n = g.n();
        prop_assert_eq!(g.m() + g.complement().m(), n * (n - 1) / 2);
    }

    #[test]
    fn degree_sum_is_twice_edges(g in small_graph()) {
        let sum: usize = (0..g.n()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.m());
    }

    #[test]
    fn clique_bnb_matches_brute_force(g in small_graph()) {
        let c = clique::max_clique(&g);
        prop_assert!(g.is_clique(&c));
        prop_assert_eq!(c.len(), brute_omega(&g));
    }

    #[test]
    fn bron_kerbosch_max_agrees(g in small_graph()) {
        let cliques = clique::all_maximal_cliques(&g);
        let bk_max = cliques.iter().map(Vec::len).max().unwrap_or(0);
        prop_assert_eq!(bk_max, clique::clique_number(&g));
        // Every enumerated set must actually be a clique and maximal.
        for c in &cliques {
            prop_assert!(g.is_clique(c));
            let extendable = (0..g.n())
                .filter(|v| !c.contains(v))
                .any(|v| c.iter().all(|&u| g.has_edge(u, v)));
            prop_assert!(!extendable, "clique {c:?} is not maximal");
        }
    }

    #[test]
    fn lemma7_edge_bound_holds(g in small_graph()) {
        // Lemma 7: |E| <= n(n−1)/2 − n + ω(G).
        let omega = clique::clique_number(&g);
        prop_assert!(g.m() <= lemma7_edge_bound(g.n(), omega));
    }

    #[test]
    fn vc_clique_duality(g in small_graph()) {
        // min-VC + max-IS = n, and max-IS(G) = ω(complement).
        let vc = cover::vertex_cover_number(&g);
        let is = clique::clique_number(&g.complement());
        prop_assert_eq!(vc + is, g.n());
        let cover_set = cover::min_vertex_cover(&g);
        prop_assert!(cover::is_vertex_cover(&g, &cover_set));
        prop_assert_eq!(cover_set.len(), vc);
    }

    #[test]
    fn induced_subgraph_edge_count_consistent(g in small_graph(), sel in any::<u16>()) {
        let verts: Vec<usize> = (0..g.n()).filter(|&i| sel >> i & 1 == 1).collect();
        let sub = g.induced(&verts);
        prop_assert_eq!(sub.m(), g.induced_edge_count(&verts));
        prop_assert_eq!(sub.n(), verts.len());
    }

    #[test]
    fn dimacs_parser_never_panics(garbage in "[a-z0-9 pe\n]{0,200}") {
        let _ = aqo_graph::io::from_dimacs(&garbage);
    }

    #[test]
    fn dimacs_roundtrip(g in small_graph()) {
        let text = aqo_graph::io::to_dimacs(&g);
        prop_assert_eq!(&aqo_graph::io::from_dimacs(&text).unwrap(), &g);
    }

    #[test]
    fn coloring_bound_dominates_omega(g in small_graph()) {
        let ub = aqo_graph::coloring::clique_upper_bound(&g);
        prop_assert!(ub >= clique::clique_number(&g));
    }

    #[test]
    fn generators_respect_contracts(seed in any::<u64>(), n in 2usize..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = generators::random_tree(n, &mut rng);
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.m(), n - 1);

        let k = n / 2 + 1;
        if k >= 2 && k <= n {
            let d = generators::dense_known_omega(n, k);
            prop_assert_eq!(clique::clique_number(&d), k);
        }
    }
}
