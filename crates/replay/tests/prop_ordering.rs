//! Property tests for the execution-backed ordering gate: across seeded
//! chain, star, and random-sparse instances, whenever the cost model
//! prices one candidate plan at least half a bit below another, the
//! model-cheaper plan must not do more measured work than the default
//! tolerance allows. The workload generators pin `w` at the model's
//! index lower bound `⌈t·s⌉`, the regime where model cost and touched
//! tuples are the same quantity — so ordering agreement here is the
//! executor and the cost recurrences auditing each other.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::workloads::{self, WorkloadParams};
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::generators;
use aqo_replay::validate::{validate_instance, ValidateConfig, ValidateReport};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cardinalities large enough that Poisson noise on per-join counts stays
/// well inside the gate's tolerance, small enough to execute instantly.
fn params() -> WorkloadParams {
    WorkloadParams { min_rows: 40, max_rows: 120, min_sel_den: 20, max_sel_den: 60 }
}

/// A random connected sparse instance: a random connected graph with one
/// extra edge beyond a tree, sizes/selectivities from `params`, and `w`
/// at the index lower bound like the workload generators.
fn random_sparse(n: usize, rng: &mut StdRng) -> QoNInstance {
    let p = params();
    let g = generators::random_connected(n, n, rng);
    let sizes: Vec<BigUint> =
        (0..n).map(|_| BigUint::from(rng.gen_range(p.min_rows..=p.max_rows))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges() {
        let den = rng.gen_range(p.min_sel_den..=p.max_sel_den);
        let sel = BigRational::recip_of(BigUint::from(den));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone().max(BigUint::one()));
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn check(name: &str, inst: &QoNInstance, seed: u64) -> Result<(), TestCaseError> {
    let cfg = ValidateConfig { trials: 2, seed, ..ValidateConfig::default() };
    let mut report = ValidateReport::new(cfg);
    validate_instance(name, inst, &cfg, &mut report);
    prop_assert!(
        report.violations.is_empty(),
        "{name}: ordering violations at default tolerance: {:?}",
        report.violations
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chain_instances_respect_model_ordering(seed in any::<u64>(), n in 4usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = workloads::chain(n, &params(), &mut rng);
        check("chain", &inst, seed)?;
    }

    #[test]
    fn star_instances_respect_model_ordering(seed in any::<u64>(), n in 4usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = workloads::star(n, &params(), &mut rng);
        check("star", &inst, seed)?;
    }

    #[test]
    fn random_sparse_instances_respect_model_ordering(seed in any::<u64>(), n in 4usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_sparse(n, &mut rng);
        check("random-sparse", &inst, seed)?;
    }
}
