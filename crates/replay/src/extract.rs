//! `aqo replay extract`: converts a serve trace journal into an
//! `aqo-workload/v1` capture.
//!
//! The serve intake emits a `serve_request` event (instance + non-default
//! knobs) and the engine a `serve_response` event (tier/cost/plan
//! observation) for every request; both carry the trace id minted at
//! intake, which is the pairing key — ids are client-chosen and may
//! repeat, trace ids never do. Unreplayable pairs are skipped and
//! counted: control ops, error responses, degraded responses (their chain
//! was overload-chosen), clique (no execution story), and events recorded
//! without tracing enabled (nothing to pair on).

use crate::workload::Workload;
use aqo_obs::json::{self, JsonValue};
use aqo_serve::proto::Problem;
use aqo_serve::record::RecordedRequest;
use std::collections::HashMap;

/// What extraction kept and what it dropped (and why).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Entries written to the workload.
    pub extracted: usize,
    /// Optimize responses with `ok: false`.
    pub skipped_errors: usize,
    /// Optimize responses tagged degraded.
    pub skipped_degraded: usize,
    /// Optimize requests/responses for problems with no replay story
    /// (clique) and non-optimize ops.
    pub skipped_unreplayable: usize,
    /// Responses whose request side never showed up (or carried no trace
    /// id to pair on).
    pub skipped_unpaired: usize,
}

/// The request-side fields harvested from a `serve_request` event.
struct RequestSide {
    id: u64,
    problem: Problem,
    instance: String,
    method: Option<String>,
    fallback: Option<String>,
    timeout_ms: Option<u64>,
    max_expansions: Option<u64>,
    threads: usize,
    allow_cartesian: bool,
}

/// Parses a journal (JSONL text) into a workload plus skip statistics.
/// Journal lines that are not serve request/response events are ignored;
/// malformed JSON lines are an error (a journal that does not parse is
/// worth failing loudly on, not silently under-extracting).
pub fn extract(journal: &str) -> Result<(Workload, ExtractStats), String> {
    let mut stats = ExtractStats::default();
    let mut pending: HashMap<u64, RequestSide> = HashMap::new();
    let mut entries: Vec<RecordedRequest> = Vec::new();
    for (ln, line) in journal.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let etype = doc.get("type").and_then(JsonValue::as_str).unwrap_or("");
        match etype {
            "serve_request" => harvest_request(&doc, &mut pending),
            "serve_response" => {
                harvest_response(&doc, &mut pending, &mut entries, &mut stats);
            }
            _ => {}
        }
    }
    Ok((Workload::new("journal", None, entries), stats))
}

fn trace_id(doc: &JsonValue) -> Option<u64> {
    doc.get("trace_id").and_then(JsonValue::as_num).filter(|n| *n > 0.0).map(|n| n as u64)
}

fn u64_of(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(JsonValue::as_num).filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
}

fn harvest_request(doc: &JsonValue, pending: &mut HashMap<u64, RequestSide>) {
    if doc.get("op").and_then(JsonValue::as_str) != Some("optimize") {
        // Control ops and explain are counted once, on the response side,
        // to avoid double-counting a skipped request/response pair.
        return;
    }
    let problem = match doc.get("problem").and_then(JsonValue::as_str) {
        Some("qon") => Problem::Qon,
        Some("qoh") => Problem::Qoh,
        _ => return,
    };
    let (Some(tid), Some(instance)) =
        (trace_id(doc), doc.get("instance").and_then(JsonValue::as_str))
    else {
        return;
    };
    pending.insert(
        tid,
        RequestSide {
            id: u64_of(doc, "id").unwrap_or(0),
            problem,
            instance: instance.to_string(),
            method: doc.get("method").and_then(JsonValue::as_str).map(str::to_string),
            fallback: doc.get("fallback").and_then(JsonValue::as_str).map(str::to_string),
            timeout_ms: u64_of(doc, "timeout_ms"),
            max_expansions: u64_of(doc, "max_expansions"),
            threads: u64_of(doc, "threads").unwrap_or(1) as usize,
            allow_cartesian: !matches!(doc.get("allow_cartesian"), Some(JsonValue::Bool(false))),
        },
    );
}

fn harvest_response(
    doc: &JsonValue,
    pending: &mut HashMap<u64, RequestSide>,
    entries: &mut Vec<RecordedRequest>,
    stats: &mut ExtractStats,
) {
    if doc.get("op").and_then(JsonValue::as_str) != Some("optimize") {
        stats.skipped_unreplayable += 1;
        return;
    }
    let req = match trace_id(doc).and_then(|tid| pending.remove(&tid)) {
        Some(r) => r,
        None => {
            stats.skipped_unpaired += 1;
            return;
        }
    };
    if !matches!(doc.get("ok"), Some(JsonValue::Bool(true))) {
        stats.skipped_errors += 1;
        return;
    }
    if matches!(doc.get("degraded"), Some(JsonValue::Bool(true))) {
        stats.skipped_degraded += 1;
        return;
    }
    let observation = (|| -> Option<(u64, String, String, f64, Vec<usize>)> {
        let fingerprint = doc
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s.strip_prefix("0x")?, 16).ok())?;
        let tier = doc.get("tier").and_then(JsonValue::as_str)?.to_string();
        let cost = doc.get("cost").and_then(JsonValue::as_str)?.to_string();
        let cost_log2 = doc.get("cost_log2").and_then(JsonValue::as_num)?;
        let order = doc
            .get("order")
            .and_then(JsonValue::as_str)?
            .split(',')
            .filter(|t| !t.is_empty())
            .map(|t| t.parse::<usize>().ok())
            .collect::<Option<Vec<usize>>>()?;
        Some((fingerprint, tier, cost, cost_log2, order))
    })();
    let Some((fingerprint, tier, cost, cost_log2, order)) = observation else {
        // A response from a build that predates plan-carrying events:
        // nothing to baseline against.
        stats.skipped_unreplayable += 1;
        return;
    };
    let decomposition = doc.get("decomposition").and_then(JsonValue::as_str).and_then(|s| {
        s.split(',')
            .filter(|t| !t.is_empty())
            .map(|t| {
                let (lo, hi) = t.split_once('-')?;
                Some((lo.parse().ok()?, hi.parse().ok()?))
            })
            .collect::<Option<Vec<(usize, usize)>>>()
    });
    // The handling latency is the event's *second* `us` field: the first
    // is the journal's reserved line timestamp (the event field rides
    // after it, same key — see `aqo_obs::journal`).
    let latency_us = match doc {
        JsonValue::Obj(fields) => fields
            .iter()
            .rfind(|(k, _)| k == "us")
            .and_then(|(_, v)| v.as_num())
            .map(|n| n as u64)
            .unwrap_or(0),
        _ => 0,
    };
    entries.push(RecordedRequest {
        id: req.id,
        problem: req.problem,
        instance: req.instance,
        method: req.method,
        fallback: req.fallback,
        timeout_ms: req.timeout_ms,
        max_expansions: req.max_expansions,
        threads: req.threads,
        allow_cartesian: req.allow_cartesian,
        fingerprint,
        tier,
        exact: matches!(doc.get("exact"), Some(JsonValue::Bool(true))),
        cached: matches!(doc.get("cached"), Some(JsonValue::Bool(true))),
        cost,
        cost_log2,
        order,
        decomposition,
        latency_us,
    });
    stats.extracted += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built journal: one good qon pair, one error pair, one
    /// degraded pair, one qoh pair, one unpaired response, one status op.
    const JOURNAL: &str = concat!(
        "{\"seq\": 1, \"us\": 10, \"type\": \"serve_request\", \"id\": 0, \"op\": \"optimize\", \"problem\": \"qon\", \"instance\": \"qon\\nvertices 1\\nsize 0 5\\n\", \"method\": \"dp\", \"trace_id\": 101, \"parent_span_id\": 0}\n",
        "{\"seq\": 2, \"us\": 20, \"type\": \"serve_response\", \"id\": 0, \"op\": \"optimize\", \"problem\": \"qon\", \"ok\": true, \"cached\": false, \"us\": 900, \"fingerprint\": \"0x00000000000000aa\", \"tier\": \"dp\", \"exact\": true, \"degraded\": false, \"cost\": \"5\", \"cost_log2\": 2.322, \"order\": \"0\", \"trace_id\": 101, \"parent_span_id\": 0}\n",
        "{\"seq\": 3, \"us\": 30, \"type\": \"serve_request\", \"id\": 1, \"op\": \"optimize\", \"problem\": \"qon\", \"instance\": \"bad\", \"trace_id\": 102, \"parent_span_id\": 0}\n",
        "{\"seq\": 4, \"us\": 40, \"type\": \"serve_response\", \"id\": 1, \"op\": \"optimize\", \"problem\": \"qon\", \"ok\": false, \"cached\": false, \"us\": 50, \"trace_id\": 102, \"parent_span_id\": 0}\n",
        "{\"seq\": 5, \"us\": 50, \"type\": \"serve_request\", \"id\": 2, \"op\": \"optimize\", \"problem\": \"qoh\", \"instance\": \"qoh…\", \"trace_id\": 103, \"parent_span_id\": 0}\n",
        "{\"seq\": 6, \"us\": 60, \"type\": \"serve_response\", \"id\": 2, \"op\": \"optimize\", \"problem\": \"qoh\", \"ok\": true, \"cached\": true, \"us\": 70, \"fingerprint\": \"0x00000000000000bb\", \"tier\": \"exhaustive\", \"exact\": true, \"degraded\": false, \"cost\": \"7/2\", \"cost_log2\": 1.807, \"order\": \"1,0\", \"decomposition\": \"1-1,2-2\", \"trace_id\": 103, \"parent_span_id\": 0}\n",
        "{\"seq\": 7, \"us\": 70, \"type\": \"serve_request\", \"id\": 3, \"op\": \"optimize\", \"problem\": \"qon\", \"instance\": \"qon…\", \"trace_id\": 104, \"parent_span_id\": 0}\n",
        "{\"seq\": 8, \"us\": 80, \"type\": \"serve_response\", \"id\": 3, \"op\": \"optimize\", \"problem\": \"qon\", \"ok\": true, \"cached\": false, \"us\": 95, \"fingerprint\": \"0x00000000000000cc\", \"tier\": \"greedy\", \"exact\": false, \"degraded\": true, \"cost\": \"9\", \"cost_log2\": 3.17, \"order\": \"0\", \"trace_id\": 104, \"parent_span_id\": 0}\n",
        "{\"seq\": 9, \"us\": 90, \"type\": \"serve_response\", \"id\": 4, \"op\": \"optimize\", \"problem\": \"qon\", \"ok\": true, \"cached\": false, \"us\": 11, \"trace_id\": 999, \"parent_span_id\": 0}\n",
        "{\"seq\": 10, \"us\": 95, \"type\": \"serve_response\", \"id\": 5, \"op\": \"status\", \"problem\": \"qon\", \"ok\": true, \"cached\": false, \"us\": 3, \"trace_id\": 105, \"parent_span_id\": 0}\n",
        "{\"seq\": 11, \"us\": 99, \"type\": \"serve_shutdown\", \"reason\": \"shutdown\"}\n",
    );

    #[test]
    fn pairs_by_trace_id_and_skips_unreplayable() {
        let (w, stats) = extract(JOURNAL).expect("extracts");
        assert_eq!(w.source, "journal");
        assert_eq!(stats.extracted, 2);
        assert_eq!(stats.skipped_errors, 1);
        assert_eq!(stats.skipped_degraded, 1);
        assert_eq!(stats.skipped_unpaired, 1);
        assert_eq!(stats.skipped_unreplayable, 1, "the status op");
        assert_eq!(w.entries.len(), 2);

        let qon = &w.entries[0];
        assert_eq!(qon.id, 0);
        assert_eq!(qon.method.as_deref(), Some("dp"));
        assert_eq!(qon.fingerprint, 0xaa);
        assert_eq!(qon.cost, "5");
        assert_eq!(qon.order, vec![0]);
        assert_eq!(qon.latency_us, 900, "latency is the second `us` field");

        let qoh = &w.entries[1];
        assert_eq!(qoh.problem, Problem::Qoh);
        assert!(qoh.cached);
        assert_eq!(qoh.order, vec![1, 0]);
        assert_eq!(qoh.decomposition.as_deref(), Some(&[(1, 1), (2, 2)][..]));

        // The extracted workload serializes and re-parses cleanly.
        let text = w.to_jsonl();
        assert_eq!(Workload::parse(&text).expect("round trip"), w);
    }

    #[test]
    fn malformed_journal_lines_fail_loudly() {
        let err = extract("not json\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
