//! `aqo-replay`: traffic record/replay regression gating and
//! execution-backed plan validation.
//!
//! Serve journals every request and `aqo-exec` can run the plans the cost
//! model prices; this crate closes the loop with three layers:
//!
//! - **Record** ([`workload`], [`extract`]) — the compact replayable
//!   `aqo-workload/v1` JSONL format: instance fingerprint, inline instance
//!   text, per-request method/fallback/budget/threads knobs, and the
//!   observed cost/plan/tier/latency baseline. Produced at request time
//!   through the serve/loadgen `--record` sinks
//!   ([`aqo_serve::record`]), or after the fact from a serve trace
//!   journal with [`extract::extract`].
//! - **Replay** ([`run`]) — re-drives every recorded request against the
//!   current build (in-process sequential driver, or a live server via
//!   the existing client) and diffs cost (exact, `aqo_bignum`
//!   comparison), plan shape, tier, and latency quantiles against the
//!   baseline. The deterministic `aqo-replay/v1` report lists every diff;
//!   any cost/plan regression fails the gate.
//! - **Validate** ([`validate`]) — routes instances through `aqo-exec`:
//!   synthesize data at the declared selectivities, execute the
//!   optimizer-chosen plan and each fallback tier's plan, and assert the
//!   cost model's *ordering* prediction — cheaper-by-model must not do
//!   more measured work, within a configurable tolerance over repeated
//!   trials — across chain/star/cycle and reduction-generated gap
//!   families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod run;
pub mod validate;
pub mod workload;

pub use run::{ReplayConfig, ReplayReport};
pub use validate::{ValidateConfig, ValidateReport};
pub use workload::Workload;
