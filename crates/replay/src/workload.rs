//! The `aqo-workload/v1` file format: a replayable traffic capture.
//!
//! One JSON object per line. The first line is the header (`schema`,
//! `source`, optional `seed`, entry count); every following line is one
//! recorded request — the request side (instance + non-default knobs,
//! mirroring the wire protocol's omit-defaults policy) and the observed
//! baseline (`tier`/`exact`/`cached`/`cost`/`cost_log2`/`order`/
//! `decomposition`/`latency_us`). Entries reuse
//! [`aqo_serve::record::RecordedRequest`] directly, so the three
//! producers — serve `--record`, loadgen `--record`, and `aqo replay
//! extract` — agree by construction on what a baseline is.

use aqo_obs::json::{self, JsonValue};
use aqo_serve::proto::{Op, Problem, Request};
use aqo_serve::record::RecordedRequest;
use std::fmt::Write as _;

/// The format's schema tag (header `schema` field).
pub const SCHEMA: &str = "aqo-workload/v1";

/// A parsed workload file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Workload {
    /// Where the capture came from (`"loadgen"`, `"serve"`, `"journal"`).
    pub source: String,
    /// Generator seed, when the producer had one (loadgen).
    pub seed: Option<u64>,
    /// Recorded requests, in capture order.
    pub entries: Vec<RecordedRequest>,
}

impl Workload {
    /// Wraps recorded observations into a workload.
    pub fn new(source: &str, seed: Option<u64>, entries: Vec<RecordedRequest>) -> Self {
        Workload { source: source.to_string(), seed, entries }
    }

    /// Serializes the workload as JSONL (header line + one line per
    /// entry, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(256 * (self.entries.len() + 1));
        let _ = write!(out, "{{\"schema\": \"{SCHEMA}\", \"source\": ");
        json::escape_into(&mut out, &self.source);
        if let Some(seed) = self.seed {
            let _ = write!(out, ", \"seed\": {seed}");
        }
        let _ = writeln!(out, ", \"requests\": {}}}", self.entries.len());
        for e in &self.entries {
            entry_to_jsonl(&mut out, e);
        }
        out
    }

    /// Parses a workload file. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Workload, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (ln, header) = lines.next().ok_or("empty workload file")?;
        let doc = json::parse(header).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let schema = doc.get("schema").and_then(JsonValue::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("line {}: expected schema {SCHEMA}, got `{schema}`", ln + 1));
        }
        let source = doc
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: header has no `source`", ln + 1))?
            .to_string();
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_num)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64);
        let mut entries = Vec::new();
        for (ln, line) in lines {
            entries.push(
                parse_entry(line).map_err(|e| format!("line {}: {e}", ln + 1))?,
            );
        }
        Ok(Workload { source, seed, entries })
    }

    /// Rebuilds the wire request a recorded entry corresponds to, for
    /// re-driving it against a live server or the in-process driver.
    pub fn request_for(entry: &RecordedRequest) -> Request {
        let mut req = Request::new(Op::Optimize, entry.problem);
        req.id = entry.id;
        req.instance = Some(entry.instance.clone());
        req.method = entry.method.clone();
        req.fallback = entry.fallback.clone();
        req.timeout_ms = entry.timeout_ms;
        req.max_expansions = entry.max_expansions;
        req.threads = entry.threads;
        req.allow_cartesian = entry.allow_cartesian;
        req
    }
}

/// One entry as a JSON line (defaults omitted, like the wire protocol).
fn entry_to_jsonl(out: &mut String, e: &RecordedRequest) {
    let _ = write!(
        out,
        "{{\"id\": {}, \"problem\": \"{}\", \"fingerprint\": \"{:#018x}\", \"instance\": ",
        e.id,
        e.problem.name(),
        e.fingerprint
    );
    json::escape_into(out, &e.instance);
    if let Some(m) = &e.method {
        out.push_str(", \"method\": ");
        json::escape_into(out, m);
    }
    if let Some(f) = &e.fallback {
        out.push_str(", \"fallback\": ");
        json::escape_into(out, f);
    }
    if let Some(t) = e.timeout_ms {
        let _ = write!(out, ", \"timeout_ms\": {t}");
    }
    if let Some(x) = e.max_expansions {
        let _ = write!(out, ", \"max_expansions\": {x}");
    }
    if e.threads != 1 {
        let _ = write!(out, ", \"threads\": {}", e.threads);
    }
    if !e.allow_cartesian {
        out.push_str(", \"allow_cartesian\": false");
    }
    out.push_str(", \"baseline\": {\"tier\": ");
    json::escape_into(out, &e.tier);
    let _ = write!(out, ", \"exact\": {}, \"cached\": {}, \"cost\": ", e.exact, e.cached);
    json::escape_into(out, &e.cost);
    let _ = write!(out, ", \"cost_log2\": {:.3}, \"order\": [", e.cost_log2);
    for (i, v) in e.order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    if let Some(frags) = &e.decomposition {
        out.push_str(", \"decomposition\": [");
        for (i, (lo, hi)) in frags.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{lo}, {hi}]");
        }
        out.push(']');
    }
    let _ = writeln!(out, ", \"latency_us\": {}}}}}", e.latency_us);
}

fn parse_entry(line: &str) -> Result<RecordedRequest, String> {
    let doc = json::parse(line).map_err(|e| e.to_string())?;
    let u64_field = |v: &JsonValue, what: &str| -> Result<u64, String> {
        v.as_num()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
            .ok_or_else(|| format!("`{what}` must be a non-negative integer"))
    };
    let id = u64_field(doc.get("id").ok_or("entry has no `id`")?, "id")?;
    let problem = match doc.get("problem").and_then(JsonValue::as_str) {
        Some("qon") => Problem::Qon,
        Some("qoh") => Problem::Qoh,
        other => return Err(format!("unreplayable problem `{}`", other.unwrap_or("?"))),
    };
    let fingerprint = doc
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .and_then(|s| u64::from_str_radix(s.strip_prefix("0x")?, 16).ok())
        .ok_or("bad `fingerprint`")?;
    let instance = doc
        .get("instance")
        .and_then(JsonValue::as_str)
        .ok_or("entry has no `instance`")?
        .to_string();
    let opt_str = |key: &str| {
        doc.get(key).and_then(JsonValue::as_str).map(str::to_string)
    };
    let opt_u64 = |key: &str| -> Result<Option<u64>, String> {
        match doc.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => u64_field(v, key).map(Some),
        }
    };
    let base = doc.get("baseline").ok_or("entry has no `baseline`")?;
    let tier =
        base.get("tier").and_then(JsonValue::as_str).ok_or("baseline has no `tier`")?.to_string();
    let cost =
        base.get("cost").and_then(JsonValue::as_str).ok_or("baseline has no `cost`")?.to_string();
    let cost_log2 =
        base.get("cost_log2").and_then(JsonValue::as_num).ok_or("baseline has no `cost_log2`")?;
    let order = base
        .get("order")
        .and_then(JsonValue::as_arr)
        .ok_or("baseline has no `order`")?
        .iter()
        .map(|v| v.as_num().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as usize))
        .collect::<Option<Vec<usize>>>()
        .ok_or("bad `order` element")?;
    let decomposition = match base.get("decomposition").and_then(JsonValue::as_arr) {
        None => None,
        Some(frags) => Some(
            frags
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().filter(|p| p.len() == 2)?;
                    let lo = pair[0].as_num().filter(|n| n.fract() == 0.0)? as usize;
                    let hi = pair[1].as_num().filter(|n| n.fract() == 0.0)? as usize;
                    Some((lo, hi))
                })
                .collect::<Option<Vec<(usize, usize)>>>()
                .ok_or("bad `decomposition` element")?,
        ),
    };
    let latency_us = match base.get("latency_us") {
        None => 0,
        Some(v) => u64_field(v, "latency_us")?,
    };
    Ok(RecordedRequest {
        id,
        problem,
        instance,
        method: opt_str("method"),
        fallback: opt_str("fallback"),
        timeout_ms: opt_u64("timeout_ms")?,
        max_expansions: opt_u64("max_expansions")?,
        threads: opt_u64("threads")?.unwrap_or(1) as usize,
        allow_cartesian: !matches!(doc.get("allow_cartesian"), Some(JsonValue::Bool(false))),
        fingerprint,
        tier,
        exact: matches!(base.get("exact"), Some(JsonValue::Bool(true))),
        cached: matches!(base.get("cached"), Some(JsonValue::Bool(true))),
        cost,
        cost_log2,
        order,
        decomposition,
        latency_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(id: u64) -> RecordedRequest {
        RecordedRequest {
            id,
            problem: if id % 2 == 0 { Problem::Qon } else { Problem::Qoh },
            instance: format!("qon\nvertices 1\nsize 0 {id}\n"),
            method: (id % 3 == 0).then(|| "dp".to_string()),
            fallback: None,
            timeout_ms: (id % 2 == 1).then_some(250),
            max_expansions: None,
            threads: if id % 4 == 0 { 4 } else { 1 },
            allow_cartesian: id % 2 == 0,
            fingerprint: 0xfeed_0000 + id,
            tier: "dp".into(),
            exact: true,
            cached: id % 2 == 1,
            cost: format!("{}/3", id + 7),
            cost_log2: 4.125,
            decomposition: (id % 2 == 1).then(|| vec![(1, 1), (2, 3)]),
            order: vec![2, 0, 1],
            latency_us: 100 + id,
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let w = Workload::new("loadgen", Some(42), (0..6).map(sample_entry).collect());
        let text = w.to_jsonl();
        assert!(text.starts_with("{\"schema\": \"aqo-workload/v1\""));
        let back = Workload::parse(&text).expect("parses");
        assert_eq!(back, w);
        // Serialization is deterministic: same value, same bytes.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn rejects_bad_headers_and_entries() {
        assert!(Workload::parse("").is_err());
        assert!(Workload::parse("{\"schema\": \"nope\", \"source\": \"x\"}").is_err());
        let w = Workload::new("serve", None, vec![sample_entry(0)]);
        let mut text = w.to_jsonl();
        text.push_str("{\"id\": 9, \"problem\": \"clique\"}\n");
        let err = Workload::parse(&text).unwrap_err();
        assert!(err.contains("line 3"), "error names the line: {err}");
    }

    #[test]
    fn request_round_trips_the_knobs() {
        let entry = sample_entry(3);
        let req = Workload::request_for(&entry);
        assert_eq!(req.id, 3);
        assert_eq!(req.op, Op::Optimize);
        assert_eq!(req.problem, Problem::Qoh);
        assert_eq!(req.method.as_deref(), Some("dp"));
        assert_eq!(req.timeout_ms, Some(250));
        assert_eq!(req.instance.as_deref(), Some(entry.instance.as_str()));
        // The wire line re-parses to the same request (proto round trip).
        let back = Request::parse(&req.to_json_line()).expect("wire round trip");
        assert_eq!(back.timeout_ms, req.timeout_ms);
        assert_eq!(back.method, req.method);
    }
}
