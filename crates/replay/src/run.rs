//! `aqo replay run`: re-drives a recorded workload against the current
//! build and diffs every answer against the recorded baseline.
//!
//! Costs are compared *exactly* — both sides parse to `aqo_bignum`
//! rationals, so a regression of one part in 10^40 is still a regression
//! and float formatting can neither hide nor invent one. Plan shape
//! (order, QO_H decomposition) is compared only between equal-cost
//! answers: a cheaper plan with a different shape is an improvement, an
//! equal-cost shape change is still a diff (same build + same request
//! must be deterministic). Tier changes at equal cost/shape are
//! informational — fallback-chain tuning legitimately moves them.
//!
//! Two backends re-drive requests: the in-process sequential driver
//! ([`driver_backend`], the default — hermetic, what CI gates on) and a
//! live server over the existing client ([`live_backend`], `--addr`).

use crate::workload::Workload;
use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::{textio, CostScalar};
use aqo_driver::{BudgetSpec, QohDriverConfig, QohTier, QonDriverConfig, QonTier};
use aqo_serve::client::{Client, RetryConfig};
use aqo_serve::proto::Problem;
use aqo_serve::record::{capture_from_json, RecordedRequest};
use std::cmp::Ordering;
use std::fmt::Write as _;
use std::time::Instant;

/// What one re-driven request produced.
#[derive(Clone, Debug)]
pub struct Observed {
    /// Tier that produced the plan.
    pub tier: String,
    /// Whether the plan is exact.
    pub exact: bool,
    /// Exact cost string (decimal or `num/den`).
    pub cost: String,
    /// The join sequence.
    pub order: Vec<usize>,
    /// QO_H pipeline fragments.
    pub decomposition: Option<Vec<(usize, usize)>>,
    /// Wall-clock for the re-drive, microseconds.
    pub latency_us: u64,
}

/// How a replayed request diverged from its baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffKind {
    /// New cost strictly greater than baseline — the gate's reason to be.
    CostRegression,
    /// New cost strictly smaller than baseline (reported, not failing).
    CostImprovement,
    /// Equal cost, different plan shape (order or decomposition).
    PlanChange,
    /// Equal cost and shape, different producing tier (informational).
    TierChange,
    /// The re-drive failed (driver error, transport error, bad baseline).
    Error,
}

impl DiffKind {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            DiffKind::CostRegression => "cost_regression",
            DiffKind::CostImprovement => "cost_improvement",
            DiffKind::PlanChange => "plan_change",
            DiffKind::TierChange => "tier_change",
            DiffKind::Error => "error",
        }
    }

    /// Whether this diff fails the regression gate.
    pub fn is_regression(self) -> bool {
        matches!(self, DiffKind::CostRegression | DiffKind::PlanChange | DiffKind::Error)
    }
}

/// One divergent request in the report.
#[derive(Clone, Debug)]
pub struct RequestDiff {
    /// Recorded request id.
    pub id: u64,
    /// Canonical instance fingerprint.
    pub fingerprint: u64,
    /// Divergence class.
    pub kind: DiffKind,
    /// Baseline cost string.
    pub baseline_cost: String,
    /// Re-driven cost string (empty on errors).
    pub new_cost: String,
    /// Baseline tier.
    pub baseline_tier: String,
    /// Re-driven tier (empty on errors).
    pub new_tier: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Latency quantiles, baseline vs re-driven (omitted from the report
/// under `strip_timing`).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Baseline (recorded) median, microseconds.
    pub baseline_p50_us: u64,
    /// Baseline 99th percentile.
    pub baseline_p99_us: u64,
    /// Re-driven median.
    pub current_p50_us: u64,
    /// Re-driven 99th percentile.
    pub current_p99_us: u64,
}

/// Replay knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayConfig {
    /// Drop latency numbers from the report so committed artifacts are
    /// byte-identical across runs (solver output is deterministic; wall
    /// clocks are not).
    pub strip_timing: bool,
}

/// The `aqo-replay/v1` report.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Workload provenance (header `source`).
    pub source: String,
    /// Entries in the workload.
    pub requests: usize,
    /// Entries re-driven (always equal to `requests` in v1).
    pub replayed: usize,
    /// Count per [`DiffKind::CostRegression`].
    pub cost_regressions: usize,
    /// Count per [`DiffKind::CostImprovement`].
    pub cost_improvements: usize,
    /// Count per [`DiffKind::PlanChange`].
    pub plan_changes: usize,
    /// Count per [`DiffKind::TierChange`].
    pub tier_changes: usize,
    /// Count per [`DiffKind::Error`].
    pub errors: usize,
    /// Every divergent request, in workload order.
    pub diffs: Vec<RequestDiff>,
    /// Latency quantiles (`None` under `strip_timing`).
    pub latency: Option<LatencySummary>,
}

impl ReplayReport {
    /// Diffs that fail the gate (`exit 1` in the CLI).
    pub fn gate_failures(&self) -> usize {
        self.cost_regressions + self.plan_changes + self.errors
    }

    /// Renders the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"schema\": \"aqo-replay/v1\",\n");
        out.push_str("  \"source\": ");
        aqo_obs::json::escape_into(&mut out, &self.source);
        let _ = write!(
            out,
            ",\n  \"requests\": {},\n  \"replayed\": {},\n  \"cost_regressions\": {},\n  \
             \"cost_improvements\": {},\n  \"plan_changes\": {},\n  \"tier_changes\": {},\n  \
             \"errors\": {},\n  \"gate_failures\": {},\n  \"diffs\": [",
            self.requests,
            self.replayed,
            self.cost_regressions,
            self.cost_improvements,
            self.plan_changes,
            self.tier_changes,
            self.errors,
            self.gate_failures(),
        );
        for (i, d) in self.diffs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"id\": {}, \"fingerprint\": \"{:#018x}\", \"kind\": \"{}\", \
                 \"baseline_cost\": ",
                d.id,
                d.fingerprint,
                d.kind.name()
            );
            aqo_obs::json::escape_into(&mut out, &d.baseline_cost);
            out.push_str(", \"new_cost\": ");
            aqo_obs::json::escape_into(&mut out, &d.new_cost);
            out.push_str(", \"baseline_tier\": ");
            aqo_obs::json::escape_into(&mut out, &d.baseline_tier);
            out.push_str(", \"new_tier\": ");
            aqo_obs::json::escape_into(&mut out, &d.new_tier);
            out.push_str(", \"detail\": ");
            aqo_obs::json::escape_into(&mut out, &d.detail);
            out.push('}');
        }
        out.push_str(if self.diffs.is_empty() { "]" } else { "\n  ]" });
        if let Some(l) = &self.latency {
            let _ = write!(
                out,
                ",\n  \"latency\": {{\"baseline_p50_us\": {}, \"baseline_p99_us\": {}, \
                 \"current_p50_us\": {}, \"current_p99_us\": {}}}",
                l.baseline_p50_us, l.baseline_p99_us, l.current_p50_us, l.current_p99_us,
            );
        }
        out.push_str("\n}\n");
        out
    }
}

/// Parses a cost string (`"123"` or `"123/7"`, always positive) to an
/// exact rational.
pub fn parse_cost(s: &str) -> Result<BigRational, String> {
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (n, d),
        None => (s, "1"),
    };
    let n = BigUint::from_decimal(num.trim()).map_err(|_| format!("bad cost numerator `{num}`"))?;
    let d =
        BigUint::from_decimal(den.trim()).map_err(|_| format!("bad cost denominator `{den}`"))?;
    if d.is_zero() {
        return Err(format!("zero cost denominator in `{s}`"));
    }
    Ok(BigRational::new(BigInt::from(n), d))
}

/// Re-drives every workload entry through `backend` and classifies the
/// divergences. Each replayed request gets its own trace + `replay.request`
/// span; every diff bumps `replay.diffs` and journals a `replay_diff`
/// event.
pub fn run<F>(workload: &Workload, cfg: &ReplayConfig, mut backend: F) -> ReplayReport
where
    F: FnMut(&RecordedRequest) -> Result<Observed, String>,
{
    let mut report = ReplayReport {
        source: workload.source.clone(),
        requests: workload.entries.len(),
        replayed: 0,
        cost_regressions: 0,
        cost_improvements: 0,
        plan_changes: 0,
        tier_changes: 0,
        errors: 0,
        diffs: Vec::new(),
        latency: None,
    };
    let baseline_hist = aqo_obs::Histogram::detached();
    let current_hist = aqo_obs::Histogram::detached();
    for entry in &workload.entries {
        let traced = aqo_obs::enabled();
        let _trace = traced.then(|| {
            aqo_obs::trace::install(aqo_obs::trace::TraceHandle::root(
                aqo_obs::trace::next_trace_id(),
            ))
        });
        let _span = aqo_obs::span("replay.request");
        if traced {
            aqo_obs::counter_handle!("replay.requests").inc();
        }
        report.replayed += 1;
        let outcome = backend(entry);
        if let Ok(obs) = &outcome {
            baseline_hist.record_always(entry.latency_us);
            current_hist.record_always(obs.latency_us);
        }
        let Some(diff) = classify(entry, &outcome) else { continue };
        match diff.kind {
            DiffKind::CostRegression => report.cost_regressions += 1,
            DiffKind::CostImprovement => report.cost_improvements += 1,
            DiffKind::PlanChange => report.plan_changes += 1,
            DiffKind::TierChange => report.tier_changes += 1,
            DiffKind::Error => report.errors += 1,
        }
        if traced {
            aqo_obs::counter_handle!("replay.diffs").inc();
            aqo_obs::journal::event(
                "replay_diff",
                vec![
                    ("id", diff.id.into()),
                    ("kind", diff.kind.name().into()),
                    ("baseline_cost", diff.baseline_cost.clone().into()),
                    ("new_cost", diff.new_cost.clone().into()),
                    ("detail", diff.detail.clone().into()),
                ],
            );
        }
        report.diffs.push(diff);
    }
    if !cfg.strip_timing {
        report.latency = Some(LatencySummary {
            baseline_p50_us: baseline_hist.quantile(0.50),
            baseline_p99_us: baseline_hist.quantile(0.99),
            current_p50_us: current_hist.quantile(0.50),
            current_p99_us: current_hist.quantile(0.99),
        });
    }
    report
}

/// Diffs one re-driven answer against its baseline; `None` = no diff.
fn classify(entry: &RecordedRequest, outcome: &Result<Observed, String>) -> Option<RequestDiff> {
    let diff = |kind: DiffKind, new_cost: &str, new_tier: &str, detail: String| RequestDiff {
        id: entry.id,
        fingerprint: entry.fingerprint,
        kind,
        baseline_cost: entry.cost.clone(),
        new_cost: new_cost.to_string(),
        baseline_tier: entry.tier.clone(),
        new_tier: new_tier.to_string(),
        detail,
    };
    let obs = match outcome {
        Ok(o) => o,
        Err(e) => return Some(diff(DiffKind::Error, "", "", format!("re-drive failed: {e}"))),
    };
    let base_cost = match parse_cost(&entry.cost) {
        Ok(c) => c,
        Err(e) => {
            return Some(diff(DiffKind::Error, &obs.cost, &obs.tier, format!("baseline: {e}")))
        }
    };
    let new_cost = match parse_cost(&obs.cost) {
        Ok(c) => c,
        Err(e) => {
            return Some(diff(DiffKind::Error, &obs.cost, &obs.tier, format!("re-driven: {e}")))
        }
    };
    match new_cost.cmp(&base_cost) {
        Ordering::Greater => {
            let delta = CostScalar::log2(&new_cost) - CostScalar::log2(&base_cost);
            Some(diff(
                DiffKind::CostRegression,
                &obs.cost,
                &obs.tier,
                format!("cost regressed by {delta:.3} bits"),
            ))
        }
        Ordering::Less => {
            let delta = CostScalar::log2(&base_cost) - CostScalar::log2(&new_cost);
            Some(diff(
                DiffKind::CostImprovement,
                &obs.cost,
                &obs.tier,
                format!("cost improved by {delta:.3} bits"),
            ))
        }
        Ordering::Equal => {
            if obs.order != entry.order || obs.decomposition != entry.decomposition {
                return Some(diff(
                    DiffKind::PlanChange,
                    &obs.cost,
                    &obs.tier,
                    format!(
                        "equal cost, different plan: {:?} vs baseline {:?}",
                        obs.order, entry.order
                    ),
                ));
            }
            if obs.tier != entry.tier {
                return Some(diff(
                    DiffKind::TierChange,
                    &obs.cost,
                    &obs.tier,
                    format!("tier {} now answers (was {})", obs.tier, entry.tier),
                ));
            }
            None
        }
    }
}

/// The in-process backend: rebuilds the driver configuration a request's
/// knobs describe and runs the sequential driver directly — no server,
/// no transport, fully hermetic.
pub fn driver_backend() -> impl FnMut(&RecordedRequest) -> Result<Observed, String> {
    |entry: &RecordedRequest| {
        let t0 = Instant::now();
        let spec = entry.method.as_deref().or(entry.fallback.as_deref());
        let budget = BudgetSpec {
            timeout: entry.timeout_ms.map(std::time::Duration::from_millis),
            max_expansions: entry.max_expansions,
            max_memory_bytes: None,
        };
        match entry.problem {
            Problem::Qon => {
                let inst =
                    textio::qon_from_text(&entry.instance).map_err(|e| format!("instance: {e}"))?;
                let chain = match spec {
                    Some(s) => QonTier::parse_chain(s)?,
                    None => QonTier::default_chain(),
                };
                let cfg = QonDriverConfig {
                    budget,
                    chain,
                    allow_cartesian: entry.allow_cartesian,
                    threads: entry.threads,
                    ..QonDriverConfig::default()
                };
                let outcome =
                    aqo_driver::optimize_qon(&inst, &cfg).map_err(|e| e.to_string())?;
                Ok(Observed {
                    tier: outcome.report.tier.to_string(),
                    exact: outcome.report.exact,
                    cost: outcome.optimum.cost.to_string(),
                    order: outcome.optimum.sequence.order().to_vec(),
                    decomposition: None,
                    latency_us: t0.elapsed().as_micros() as u64,
                })
            }
            Problem::Qoh => {
                let inst =
                    textio::qoh_from_text(&entry.instance).map_err(|e| format!("instance: {e}"))?;
                let chain = match spec {
                    Some(s) => QohTier::parse_chain(s)?,
                    None => QohTier::default_chain(),
                };
                let cfg = QohDriverConfig {
                    budget,
                    chain,
                    threads: entry.threads,
                    ..QohDriverConfig::default()
                };
                let outcome =
                    aqo_driver::optimize_qoh(&inst, &cfg).map_err(|e| e.to_string())?;
                Ok(Observed {
                    tier: outcome.report.tier.to_string(),
                    exact: outcome.report.exact,
                    cost: outcome.plan.cost.to_string(),
                    order: outcome.plan.sequence.order().to_vec(),
                    decomposition: Some(outcome.plan.decomposition.fragments().to_vec()),
                    latency_us: t0.elapsed().as_micros() as u64,
                })
            }
            Problem::Clique => Err("clique entries are not replayable".into()),
        }
    }
}

/// The live backend: re-drives requests through an `aqo-serve` endpoint
/// with the existing retrying client. Latency is the client-observed
/// round trip.
pub fn live_backend(
    addr: &str,
) -> Result<impl FnMut(&RecordedRequest) -> Result<Observed, String>, String> {
    let retry = RetryConfig::default();
    let mut client = Client::connect_with_timeout(addr, retry.read_timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    Ok(move |entry: &RecordedRequest| {
        let req = Workload::request_for(entry);
        let t0 = Instant::now();
        let line = client.roundtrip_retry(&req, &retry).map_err(|e| {
            let _ = client.reconnect();
            format!("roundtrip: {e}")
        })?;
        let latency_us = t0.elapsed().as_micros() as u64;
        let doc = aqo_obs::json::parse(&line).map_err(|e| format!("reply: {e}"))?;
        if !matches!(doc.get("ok"), Some(aqo_obs::json::JsonValue::Bool(true))) {
            return Err(format!("server error: {line}"));
        }
        let rec = capture_from_json(&req, &doc, latency_us)
            .ok_or_else(|| format!("unreplayable reply: {line}"))?;
        Ok(Observed {
            tier: rec.tier,
            exact: rec.exact,
            cost: rec.cost,
            order: rec.order,
            decomposition: rec.decomposition,
            latency_us,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cost: &str, order: Vec<usize>, tier: &str) -> RecordedRequest {
        RecordedRequest {
            id: 1,
            problem: Problem::Qon,
            instance: "qon\nvertices 1\nsize 0 5\n".into(),
            method: None,
            fallback: None,
            timeout_ms: None,
            max_expansions: None,
            threads: 1,
            allow_cartesian: true,
            fingerprint: 0xab,
            tier: tier.into(),
            exact: true,
            cached: false,
            cost: cost.into(),
            cost_log2: 0.0,
            order,
            decomposition: None,
            latency_us: 50,
        }
    }

    fn observed(cost: &str, order: Vec<usize>, tier: &str) -> Observed {
        Observed {
            tier: tier.into(),
            exact: true,
            cost: cost.into(),
            order,
            decomposition: None,
            latency_us: 10,
        }
    }

    #[test]
    fn exact_cost_comparison_classifies_diffs() {
        // 10/4 == 5/2: different strings, same rational — no diff.
        let e = entry("10/4", vec![0, 1], "dp");
        assert!(classify(&e, &Ok(observed("5/2", vec![0, 1], "dp"))).is_none());
        // Strictly larger — regression.
        let d = classify(&e, &Ok(observed("11/4", vec![0, 1], "dp"))).unwrap();
        assert_eq!(d.kind, DiffKind::CostRegression);
        assert!(d.kind.is_regression());
        // Strictly smaller — improvement, not a gate failure.
        let d = classify(&e, &Ok(observed("9/4", vec![0, 1], "dp"))).unwrap();
        assert_eq!(d.kind, DiffKind::CostImprovement);
        assert!(!d.kind.is_regression());
        // Equal cost, different order — plan change (gate failure).
        let d = classify(&e, &Ok(observed("5/2", vec![1, 0], "dp"))).unwrap();
        assert_eq!(d.kind, DiffKind::PlanChange);
        assert!(d.kind.is_regression());
        // Equal everything, different tier — informational.
        let d = classify(&e, &Ok(observed("5/2", vec![0, 1], "ccp"))).unwrap();
        assert_eq!(d.kind, DiffKind::TierChange);
        assert!(!d.kind.is_regression());
        // Backend failure — error (gate failure).
        let d = classify(&e, &Err("boom".into())).unwrap();
        assert_eq!(d.kind, DiffKind::Error);
        assert!(d.kind.is_regression());
    }

    #[test]
    fn report_counts_and_json_shape() {
        let w = Workload::new(
            "test",
            None,
            vec![
                entry("4", vec![0], "dp"),
                entry("4", vec![0], "dp"),
                entry("4", vec![0], "dp"),
            ],
        );
        let mut answers = vec![
            Ok(observed("4", vec![0], "dp")),   // match
            Ok(observed("5", vec![0], "dp")),   // regression
            Err("transport down".to_string()),  // error
        ]
        .into_iter();
        let report = run(&w, &ReplayConfig { strip_timing: true }, |_| answers.next().unwrap());
        assert_eq!(report.replayed, 3);
        assert_eq!(report.cost_regressions, 1);
        assert_eq!(report.errors, 1);
        assert_eq!(report.gate_failures(), 2);
        assert!(report.latency.is_none(), "strip_timing drops latency");
        let json = report.to_json();
        let doc = aqo_obs::json::parse(&json).expect("report is valid JSON");
        assert_eq!(
            doc.get("schema").and_then(aqo_obs::json::JsonValue::as_str),
            Some("aqo-replay/v1")
        );
        assert_eq!(doc.get("gate_failures").and_then(aqo_obs::json::JsonValue::as_num), Some(2.0));
        assert_eq!(
            doc.get("diffs").and_then(aqo_obs::json::JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("latency").is_none());
    }

    #[test]
    fn driver_backend_reproduces_recorded_baselines() {
        // Drive a real instance through the driver twice: the second run
        // must replay the first with zero diffs.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let params = aqo_core::workloads::WorkloadParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        let inst = aqo_core::workloads::chain(6, &params, &mut rng);
        let text = textio::qon_to_text(&inst);
        let mut backend = driver_backend();
        let mut e = entry("0", vec![], "dp");
        e.instance = text;
        let first = backend(&e).expect("first drive");
        e.cost = first.cost.clone();
        e.order = first.order.clone();
        e.tier = first.tier.clone();
        let w = Workload::new("test", None, vec![e]);
        let report = run(&w, &ReplayConfig { strip_timing: true }, backend);
        assert_eq!(report.gate_failures(), 0, "diffs: {:?}", report.diffs);
        assert!(report.diffs.is_empty());
    }
}
