//! `aqo replay validate`: execution-backed validation of the cost model's
//! *ordering* claims.
//!
//! The optimizer is only as trustworthy as the model it minimizes. This
//! layer closes the loop with `aqo-exec`: synthesize data at an instance's
//! declared sizes and selectivities, execute several candidate plans — the
//! optimizer's choice plus each fallback tier's answer plus naive
//! identity/reversed orders — on the *same* databases, and assert that
//! whenever the model prices one plan at least [`ValidateConfig::min_gap_log2`]
//! bits below another, the model-cheaper plan does no more measured work
//! than the model-dearer one, within a multiplicative
//! [`ValidateConfig::tolerance`] averaged over repeated trials.
//!
//! The gate deliberately checks *ordering*, not absolute calibration:
//! constant factors between `w`-weighted model cost and touched-tuple
//! counts are expected, but the model telling the optimizer to prefer a
//! plan that measurably does more work is a correctness bug (or a
//! miscalibrated instance — see `fixtures/miscalibrated.qon`, which this
//! gate must and does reject).

use crate::workload::Workload;
use aqo_bignum::{BigRational, BigUint};
use aqo_core::workloads::WorkloadParams;
use aqo_core::{textio, workloads, CostScalar, JoinSequence};
use aqo_core::qon::QoNInstance;
use aqo_driver::{QonDriverConfig, QonTier};
use aqo_exec::data::{Database, MAX_TUPLES};
use aqo_exec::engine::Executor;
use aqo_graph::generators;
use aqo_reductions::sparse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Validation knobs.
#[derive(Clone, Copy, Debug)]
pub struct ValidateConfig {
    /// Databases generated per instance; plans are measured on all of
    /// them (paired trials) and work is averaged.
    pub trials: usize,
    /// Allowed multiplicative slack: the model-cheaper plan's average
    /// measured work may exceed the model-dearer plan's by this fraction
    /// before the pair counts as a violation.
    pub tolerance: f64,
    /// Only plan pairs whose model costs differ by at least this many
    /// bits are gated — closer pairs are within modeling noise.
    pub min_gap_log2: f64,
    /// Seed for instance generation and data synthesis.
    pub seed: u64,
    /// Largest relation cardinality accepted for execution; workload
    /// entries above it are skipped (and counted). The default admits
    /// `aqo gen`-scale relations (tens of thousands of rows) — actual
    /// execution effort is bounded separately by `max_exec_log2`.
    pub max_rows: u64,
    /// Plans whose model cost exceeds this many bits are priced but not
    /// executed: a star joined leaves-first is a cartesian product that
    /// would materialize `~t^{n-1}` composite tuples, and measuring it
    /// teaches the gate nothing the price tag didn't already say.
    pub max_exec_log2: f64,
    /// Restrict the built-in sweep to the chain and star families.
    pub quick: bool,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            trials: 3,
            tolerance: 0.3,
            min_gap_log2: 0.5,
            seed: 42,
            max_rows: 200_000,
            max_exec_log2: 22.0,
            quick: false,
        }
    }
}

/// One candidate plan's model price and measured work on an instance.
#[derive(Clone, Debug)]
pub struct PlanMeasurement {
    /// Where the plan came from (`dp`, `ikkbz`, `greedy`, `identity`,
    /// `reversed`).
    pub label: String,
    /// The join order.
    pub order: Vec<usize>,
    /// `log2` of the model cost `C(Z)`.
    pub model_log2: f64,
    /// Average touched-tuple count over the paired trials.
    pub measured_work: f64,
}

/// A plan pair where the model's ordering contradicts measurement.
#[derive(Clone, Debug)]
pub struct OrderingViolation {
    /// Instance the pair was measured on.
    pub instance: String,
    /// The model-cheaper plan (which measured *more* work).
    pub cheaper: PlanMeasurement,
    /// The model-dearer plan.
    pub dearer: PlanMeasurement,
    /// `cheaper.measured_work / dearer.measured_work` (> 1 + tolerance).
    pub ratio: f64,
}

/// Per-instance summary.
#[derive(Clone, Debug)]
pub struct InstanceResult {
    /// Instance label (family name or workload request id).
    pub name: String,
    /// Relation count.
    pub n: usize,
    /// Every deduplicated candidate plan, model-cheapest first.
    pub plans: Vec<PlanMeasurement>,
    /// Candidates priced above [`ValidateConfig::max_exec_log2`] and not
    /// executed.
    pub plans_capped: usize,
    /// Gated pairs on this instance.
    pub pairs_checked: usize,
    /// Violating pairs on this instance.
    pub violations: usize,
}

/// The `aqo-replay-validate/v1` report.
#[derive(Clone, Debug)]
pub struct ValidateReport {
    /// Knobs the run used.
    pub config: ValidateConfig,
    /// Every validated instance.
    pub instances: Vec<InstanceResult>,
    /// Workload entries skipped as non-executable (too large, non-u64
    /// sizes, or not QO_N).
    pub skipped: usize,
    /// Total gated pairs.
    pub pairs_checked: usize,
    /// Every ordering violation.
    pub violations: Vec<OrderingViolation>,
}

impl ValidateReport {
    /// An empty report; [`validate_instance`] accumulates into it.
    pub fn new(config: ValidateConfig) -> Self {
        ValidateReport {
            config,
            instances: Vec::new(),
            skipped: 0,
            pairs_checked: 0,
            violations: Vec::new(),
        }
    }

    /// Whether the ordering gate holds: at least one pair checked and no
    /// violations.
    pub fn passed(&self) -> bool {
        self.pairs_checked > 0 && self.violations.is_empty()
    }

    /// Renders the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"aqo-replay-validate/v1\",\n  \"trials\": {},\n  \
             \"tolerance\": {:.3},\n  \"min_gap_log2\": {:.3},\n  \"seed\": {},\n  \
             \"instances\": [",
            self.config.trials, self.config.tolerance, self.config.min_gap_log2, self.config.seed,
        );
        for (i, inst) in self.instances.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            aqo_obs::json::escape_into(&mut out, &inst.name);
            let _ = write!(
                out,
                ", \"n\": {}, \"pairs_checked\": {}, \"violations\": {}, \"plans_capped\": {}, \
                 \"plans\": [",
                inst.n, inst.pairs_checked, inst.violations, inst.plans_capped
            );
            for (j, p) in inst.plans.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                push_plan(&mut out, p);
            }
            out.push_str("]}");
        }
        out.push_str(if self.instances.is_empty() { "]" } else { "\n  ]" });
        let _ = write!(
            out,
            ",\n  \"skipped\": {},\n  \"pairs_checked\": {},\n  \"violation_count\": {},\n  \
             \"violations\": [",
            self.skipped,
            self.pairs_checked,
            self.violations.len()
        );
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"instance\": ");
            aqo_obs::json::escape_into(&mut out, &v.instance);
            out.push_str(", \"cheaper\": ");
            push_plan(&mut out, &v.cheaper);
            out.push_str(", \"dearer\": ");
            push_plan(&mut out, &v.dearer);
            let _ = write!(out, ", \"ratio\": {:.3}}}", v.ratio);
        }
        out.push_str(if self.violations.is_empty() { "]" } else { "\n  ]" });
        let _ = write!(out, ",\n  \"passed\": {}\n}}\n", self.passed());
        out
    }
}

fn push_plan(out: &mut String, p: &PlanMeasurement) {
    out.push_str("{\"label\": ");
    aqo_obs::json::escape_into(out, &p.label);
    out.push_str(", \"order\": [");
    for (i, v) in p.order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    let _ = write!(
        out,
        "], \"model_log2\": {:.3}, \"measured_work\": {:.3}}}",
        p.model_log2, p.measured_work
    );
}

/// Whether `inst` is small enough to materialize and execute.
pub fn executable(inst: &QoNInstance, max_rows: u64) -> bool {
    let cap = max_rows.min(MAX_TUPLES as u64);
    inst.sizes().iter().all(|t| matches!(t.to_u64(), Some(v) if v <= cap))
        && inst.graph().edges().all(|(u, v)| {
            // The executor needs d = 1/s in machine range; our families
            // always use unit-fraction selectivities.
            inst.selectivity().get(u, v).recip().to_f64() <= MAX_TUPLES as f64
        })
}

/// Candidate plans: one per single-tier driver run (`dp` is the
/// optimizer's choice, `ikkbz`/`greedy` the fallback tiers' answers) plus
/// the naive identity and reversed orders, deduplicated by join order.
fn candidates(inst: &QoNInstance) -> Vec<(String, JoinSequence)> {
    let mut out: Vec<(String, JoinSequence)> = Vec::new();
    let mut push = |label: &str, z: JoinSequence| {
        if !out.iter().any(|(_, have)| have.order() == z.order()) {
            out.push((label.to_string(), z));
        }
    };
    for tier in [QonTier::Dp, QonTier::Ikkbz, QonTier::Greedy] {
        let cfg = QonDriverConfig { chain: vec![tier], ..QonDriverConfig::default() };
        // A tier that rejects the instance (e.g. IKKBZ on a cyclic graph)
        // simply contributes no candidate.
        if let Ok(outcome) = aqo_driver::optimize_qon(inst, &cfg) {
            push(outcome.report.tier, outcome.optimum.sequence);
        }
    }
    let n = inst.n();
    push("identity", JoinSequence::identity(n));
    push("reversed", JoinSequence::new((0..n).rev().collect()));
    out
}

/// Validates one instance: measures every candidate on `trials` shared
/// databases and gates each sufficiently-separated model ordering.
pub fn validate_instance(
    name: &str,
    inst: &QoNInstance,
    cfg: &ValidateConfig,
    report: &mut ValidateReport,
) {
    assert!(cfg.trials >= 1, "at least one trial");
    let dbs: Vec<Database> = (0..cfg.trials)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9));
            Database::generate(inst, &mut rng)
        })
        .collect();
    let mut plans_capped = 0usize;
    let mut plans: Vec<PlanMeasurement> = candidates(inst)
        .into_iter()
        .filter_map(|(label, z)| {
            let model: BigRational = inst.total_cost(&z);
            let model_log2 = CostScalar::log2(&model);
            if model_log2 > cfg.max_exec_log2 {
                plans_capped += 1;
                return None;
            }
            let measured = dbs
                .iter()
                .map(|db| Executor::new(inst, db).run(&z, true).total_work as f64)
                .sum::<f64>()
                / cfg.trials as f64;
            Some(PlanMeasurement {
                label,
                order: z.order().to_vec(),
                model_log2,
                measured_work: measured,
            })
        })
        .collect();
    plans.sort_by(|a, b| a.model_log2.total_cmp(&b.model_log2));
    let mut pairs = 0usize;
    let mut violations = 0usize;
    for i in 0..plans.len() {
        for j in (i + 1)..plans.len() {
            if plans[j].model_log2 - plans[i].model_log2 < cfg.min_gap_log2 {
                continue;
            }
            pairs += 1;
            // Both plans always touch at least the first relation's rows,
            // so measured work is never zero and the ratio is finite.
            let ratio = plans[i].measured_work / plans[j].measured_work;
            if ratio > 1.0 + cfg.tolerance {
                violations += 1;
                report.violations.push(OrderingViolation {
                    instance: name.to_string(),
                    cheaper: plans[i].clone(),
                    dearer: plans[j].clone(),
                    ratio,
                });
            }
        }
    }
    report.pairs_checked += pairs;
    report.instances.push(InstanceResult {
        name: name.to_string(),
        n: inst.n(),
        plans,
        plans_capped,
        pairs_checked: pairs,
        violations,
    });
}

/// The built-in family sweep: chain/star (always), cycle and a
/// reduction-generated gap instance (unless `quick`). Instance shapes and
/// data are fully determined by `cfg.seed`.
pub fn validate_builtin(cfg: &ValidateConfig) -> ValidateReport {
    let mut report = ValidateReport::new(*cfg);
    let params =
        WorkloadParams { min_rows: 40, max_rows: 120, min_sel_den: 20, max_sel_den: 60 };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let chain = workloads::chain(5, &params, &mut rng);
    validate_instance("chain-5", &chain, cfg, &mut report);
    let star = workloads::star(5, &params, &mut rng);
    validate_instance("star-5", &star, cfg, &mut report);
    if !cfg.quick {
        let cycle = workloads::cycle(5, &params, &mut rng);
        validate_instance("cycle-5", &cycle, cfg, &mut report);
        // An executable gap instance from the sparse f_{N,e} reduction:
        // a K₃ CLIQUE source blown up to 9 relations (t = α³ = 8 rows
        // each) with a chain-plus-bridge auxiliary graph, so join orders
        // that respect the bridge structure are modeled — and measured —
        // far apart from orders that don't.
        let gap = sparse::reduce_fn(
            &generators::dense_known_omega(3, 3),
            2,
            10,
            &BigUint::from(2u32),
            &BigUint::from(2u32),
            3,
        );
        validate_instance("gap-sparse-fn-9", &gap.instance, cfg, &mut report);
    }
    report
}

/// Validates the QO_N instances recorded in a workload. Entries that are
/// not executable at `cfg.max_rows` (or are QO_H) are skipped and
/// counted; duplicate fingerprints are validated once.
pub fn validate_workload(workload: &Workload, cfg: &ValidateConfig) -> Result<ValidateReport, String> {
    let mut report = ValidateReport::new(*cfg);
    let mut seen = std::collections::HashSet::new();
    for entry in &workload.entries {
        if entry.problem != aqo_serve::proto::Problem::Qon || !seen.insert(entry.fingerprint) {
            if entry.problem != aqo_serve::proto::Problem::Qon {
                report.skipped += 1;
            }
            continue;
        }
        let inst = textio::qon_from_text(&entry.instance)
            .map_err(|e| format!("request {}: {e}", entry.id))?;
        if !executable(&inst, cfg.max_rows) {
            report.skipped += 1;
            continue;
        }
        validate_instance(&format!("request-{}", entry.id), &inst, cfg, &mut report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> ValidateConfig {
        ValidateConfig { trials: 2, ..ValidateConfig::default() }
    }

    #[test]
    fn builtin_families_respect_model_ordering() {
        let report = validate_builtin(&fast());
        assert_eq!(report.instances.len(), 4, "chain, star, cycle, gap");
        assert!(report.pairs_checked > 0, "gate must actually check pairs");
        assert!(
            report.passed(),
            "ordering violations on built-in families: {:?}",
            report.violations
        );
        let json = report.to_json();
        let doc = aqo_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(aqo_obs::json::JsonValue::as_str),
            Some("aqo-replay-validate/v1")
        );
        assert!(matches!(doc.get("passed"), Some(aqo_obs::json::JsonValue::Bool(true))));
    }

    #[test]
    fn quick_mode_runs_chain_and_star_only() {
        let report = validate_builtin(&ValidateConfig { quick: true, ..fast() });
        let names: Vec<&str> = report.instances.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["chain-5", "star-5"]);
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn miscalibrated_fixture_fails_the_gate() {
        // The fixture declares w(2,1) at its legal maximum while the data
        // (driven by t·s) behaves like the legal minimum, so the model
        // steers the optimizer to a plan that measurably does more work.
        // The gate exists to catch exactly this.
        let text = include_str!("../fixtures/miscalibrated.qon");
        let inst = textio::qon_from_text(text).expect("fixture parses");
        let cfg = fast();
        let mut report = ValidateReport::new(cfg);
        validate_instance("miscalibrated", &inst, &cfg, &mut report);
        assert!(!report.passed(), "fixture must trip the ordering gate");
        assert!(!report.violations.is_empty());
        let v = &report.violations[0];
        assert!(v.ratio > 1.0 + cfg.tolerance);
        assert!(
            v.cheaper.model_log2 < v.dearer.model_log2,
            "violation records the model-cheaper plan first"
        );
    }

    #[test]
    fn workload_mode_skips_oversized_and_dedups() {
        use aqo_serve::record::RecordedRequest;
        use aqo_serve::proto::Problem;
        let small = "qon\nvertices 2\nsize 0 10\nsize 1 10\nedge 0 1 1/5 2 2\n";
        let huge = "qon\nvertices 2\nsize 0 4000000000000\nsize 1 10\nedge 0 1 1/5 800000000000 2\n";
        let entry = |id: u64, fp: u64, inst: &str| RecordedRequest {
            id,
            problem: Problem::Qon,
            instance: inst.into(),
            method: None,
            fallback: None,
            timeout_ms: None,
            max_expansions: None,
            threads: 1,
            allow_cartesian: true,
            fingerprint: fp,
            tier: "dp".into(),
            exact: true,
            cached: false,
            cost: "1".into(),
            cost_log2: 0.0,
            order: vec![0, 1],
            decomposition: None,
            latency_us: 1,
        };
        let w = Workload::new(
            "test",
            None,
            vec![entry(1, 1, small), entry(2, 1, small), entry(3, 2, huge)],
        );
        let report = validate_workload(&w, &fast()).expect("workload validates");
        assert_eq!(report.instances.len(), 1, "duplicate fingerprint validated once");
        assert_eq!(report.skipped, 1, "oversized instance skipped");
    }
}
