//! Property tests for the parallel optimizers: for every thread count,
//! the parallel subset-DP engine, branch-and-bound, and exhaustive sweeps
//! must return the sequential optimum — bit-identical cost and a valid
//! plan achieving it — on random connected AND disconnected instances,
//! with and without cartesian products.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::budget::Budget;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::{branch_bound, dp, engine, exhaustive};
use proptest::prelude::*;

/// Strategy: a QO_N instance on 3..=7 vertices, tagged with whether it is
/// connected. In the disconnected variant the graph is split into two
/// components (so the no-cartesian optimum does not exist and the DP must
/// report `None` in every mode).
fn qon_any() -> impl Strategy<Value = (QoNInstance, bool)> {
    (3usize..=7, any::<u64>(), any::<bool>()).prop_map(|(n, seed, connected)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        // A spanning tree; in the disconnected variant, vertex `n - 1`
        // stays isolated (edges only among 0..n-1) so the graph has at
        // least two components.
        let limit = if connected { n } else { n - 1 };
        for v in 1..limit {
            g.add_edge((next() % v as u64) as usize, v);
        }
        for _ in 0..n / 2 {
            let u = (next() % limit as u64) as usize;
            let v = (next() % limit as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 60)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 12));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        (QoNInstance::new(g, sizes, s, w), connected)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_phase_engine_matches_sequential_dp(
        (inst, connected) in qon_any(),
        threads in 1usize..=4,
        allow_cartesian in any::<bool>(),
    ) {
        let seq = dp::optimize::<BigRational>(&inst, allow_cartesian);
        let opts = engine::DpOptions { allow_cartesian, threads };
        let par = engine::optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded");
        match (&seq, &par) {
            (Some(a), Some(b)) => {
                // Bit-identical exact optimum.
                prop_assert_eq!(&a.cost, &b.cost);
                // The parallel plan is valid and achieves that cost.
                let recost: BigRational = inst.total_cost(&b.sequence);
                prop_assert_eq!(&recost, &b.cost);
                if !allow_cartesian {
                    prop_assert!(!inst.has_cartesian_product(&b.sequence));
                }
            }
            (None, None) => prop_assert!(!connected && !allow_cartesian),
            other => prop_assert!(false, "feasibility mismatch: {other:?}"),
        }
    }

    #[test]
    fn parallel_bnb_matches_sequential(
        (inst, connected) in qon_any(),
        threads in 1usize..=4,
        allow_cartesian in any::<bool>(),
    ) {
        let seq = branch_bound::optimize::<BigRational>(&inst, allow_cartesian);
        let par = branch_bound::optimize_par::<BigRational>(&inst, allow_cartesian, threads);
        match (&seq, &par) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.cost, &b.cost);
                let recost: BigRational = inst.total_cost(&b.sequence);
                prop_assert_eq!(&recost, &b.cost);
                if !allow_cartesian {
                    prop_assert!(!inst.has_cartesian_product(&b.sequence));
                }
            }
            (None, None) => prop_assert!(!connected && !allow_cartesian),
            other => prop_assert!(false, "feasibility mismatch: {other:?}"),
        }
    }

    #[test]
    fn parallel_exhaustive_returns_the_sequential_winner(
        (inst, connected) in qon_any(),
        threads in 1usize..=4,
    ) {
        let budget = Budget::unlimited();
        let seq = exhaustive::optimize::<BigRational>(&inst);
        let par = exhaustive::optimize_par_with_budget::<BigRational>(&inst, threads, &budget)
            .expect("unlimited budget cannot be exceeded");
        // Strided sweep + (cost, index) reduction: the *sequence* matches
        // too, not just the cost.
        prop_assert_eq!(&seq.cost, &par.cost);
        prop_assert_eq!(seq.sequence.order(), par.sequence.order());

        let seq_nc = exhaustive::optimize_no_cartesian::<BigRational>(&inst);
        let par_nc = exhaustive::optimize_no_cartesian_par_with_budget::<BigRational>(
            &inst, threads, &budget,
        )
        .expect("unlimited budget cannot be exceeded");
        match (&seq_nc, &par_nc) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.cost, &b.cost);
                prop_assert_eq!(a.sequence.order(), b.sequence.order());
            }
            (None, None) => prop_assert!(!connected),
            other => prop_assert!(false, "feasibility mismatch: {other:?}"),
        }
    }

    #[test]
    fn engine_cost_is_thread_count_invariant(
        (inst, _) in qon_any(),
        allow_cartesian in any::<bool>(),
    ) {
        let opts1 = engine::DpOptions { allow_cartesian, threads: 1 };
        let base = engine::optimize_two_phase::<BigRational>(&inst, &opts1, &Budget::unlimited())
            .expect("unlimited");
        for threads in 2..=5 {
            let opts = engine::DpOptions { allow_cartesian, threads };
            let other =
                engine::optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
                    .expect("unlimited");
            match (&base, &other) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a.cost, &b.cost);
                    // The engine's canonical tie-breaking makes even the
                    // *plan* thread-count-invariant.
                    prop_assert_eq!(a.sequence.order(), b.sequence.order());
                }
                (None, None) => {}
                other => prop_assert!(false, "feasibility mismatch: {other:?}"),
            }
        }
    }
}
