//! Property tests for the optimizer crate: optimizer agreement, plan
//! validity, and dominance relations, over randomized instances.

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use aqo_core::qoh::QoHInstance;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::{branch_bound, dp, exhaustive, greedy, pipeline, star};
use proptest::prelude::*;

/// Strategy: a connected QO_N instance on 3..=7 vertices.
fn qon_instance() -> impl Strategy<Value = QoNInstance> {
    (3usize..=7, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge((next() % v as u64) as usize, v);
        }
        for _ in 0..n / 2 {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 60)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 12));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    })
}

/// Strategy: a path QO_H instance with random memory.
fn qoh_instance() -> impl Strategy<Value = QoHInstance> {
    (3usize..=6, 2u64..12, 30u64..3000).prop_map(|(n, den, mem)| {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        for v in 1..n {
            g.add_edge(v - 1, v);
            s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(den)));
        }
        QoHInstance::new(g, vec![BigUint::from(256u64); n], s, BigUint::from(mem))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn dp_equals_exhaustive_equals_bnb(inst in qon_instance()) {
        let ex = exhaustive::optimize::<BigRational>(&inst);
        let d = dp::optimize::<BigRational>(&inst, true).unwrap();
        let bb = branch_bound::optimize::<BigRational>(&inst, true).unwrap();
        prop_assert_eq!(&ex.cost, &d.cost);
        prop_assert_eq!(&ex.cost, &bb.cost);
        // The reported sequences achieve the reported costs.
        let d_recost: BigRational = inst.total_cost(&d.sequence);
        prop_assert_eq!(&d_recost, &d.cost);
    }

    #[test]
    fn no_cartesian_optimum_dominates(inst in qon_instance()) {
        let free = dp::optimize::<BigRational>(&inst, true).unwrap();
        let restricted = dp::optimize::<BigRational>(&inst, false).unwrap();
        prop_assert!(free.cost <= restricted.cost);
        prop_assert!(!inst.has_cartesian_product(&restricted.sequence));
    }

    #[test]
    fn greedy_and_random_never_beat_optimum(inst in qon_instance(), seed in any::<u64>()) {
        let opt = dp::optimize::<BigRational>(&inst, true).unwrap();
        if let Some(z) = greedy::min_intermediate(&inst, true) {
            let c: BigRational = inst.total_cost(&z);
            prop_assert!(c >= opt.cost);
        }
        if let Some(z) = greedy::min_incremental_cost(&inst, true) {
            let c: BigRational = inst.total_cost(&z);
            prop_assert!(c >= opt.cost);
        }
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let z = greedy::random_sequence(inst.n(), &mut rng);
        let c: BigRational = inst.total_cost(&z);
        prop_assert!(c >= opt.cost);
    }

    #[test]
    fn log_dp_tracks_exact_dp(inst in qon_instance()) {
        let exact = dp::optimize::<BigRational>(&inst, true).unwrap();
        let log = dp::optimize::<LogNum>(&inst, true).unwrap();
        let recost: BigRational = inst.total_cost(&log.sequence);
        let diff = CostScalar::log2(&recost) - CostScalar::log2(&exact.cost);
        prop_assert!(diff.abs() < 1e-6, "diverged by {diff} bits");
    }

    #[test]
    fn qoh_decomposition_dp_is_exact(inst in qoh_instance()) {
        let z = JoinSequence::identity(inst.n());
        let dp_res = pipeline::best_decomposition(&inst, &z);
        let brute = pipeline::best_decomposition_bruteforce(&inst, &z);
        match (dp_res, brute) {
            (Some((_, a)), Some((_, b))) => prop_assert_eq!(a, b),
            (None, None) => {}
            other => prop_assert!(false, "feasibility mismatch: {other:?}"),
        }
    }

    #[test]
    fn qoh_greedy_never_beats_exhaustive(inst in qoh_instance()) {
        let greedy = pipeline::optimize_greedy(&inst);
        let exact = pipeline::optimize_exhaustive(&inst);
        match (greedy, exact) {
            (Some(g), Some(e)) => prop_assert!(g.cost >= e.cost),
            (None, Some(_)) => {} // heuristic may give up where search succeeds
            (Some(_), None) => prop_assert!(false, "greedy found a plan the search missed"),
            (None, None) => {}
        }
    }

    #[test]
    fn star_dp_plan_prices_correctly(seed in any::<u64>(), m in 1usize..5) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let len = m + 1;
        let tuples: Vec<BigUint> = (0..len).map(|_| BigUint::from(4 + next() % 60)).collect();
        let pages = tuples.clone();
        let ks = 4u64;
        let sort_cost: Vec<BigUint> = pages.iter().map(|b| b * &BigUint::from(ks)).collect();
        let mut selectivity = vec![BigRational::one()];
        for t in tuples.iter().skip(1) {
            let p = 1 + next() % 3;
            selectivity
                .push(BigRational::new(BigInt::from(p.min(t.to_u64().unwrap())), t.clone()));
        }
        let w: Vec<BigUint> = (0..len).map(|_| BigUint::from(1 + next() % 15)).collect();
        let w0: Vec<BigUint> = (0..len).map(|_| BigUint::from(1 + next() % 15)).collect();
        let inst = aqo_core::sqo::SqoCpInstance::new(ks, tuples, pages, sort_cost, selectivity, w, w0);
        let (plan, cost) = star::optimize(&inst);
        prop_assert_eq!(inst.plan_cost(&plan), cost);
        if m <= 4 {
            let (_, ex) = star::optimize_exhaustive(&inst);
            prop_assert_eq!(ex, star::optimize(&inst).1);
        }
    }
}
