//! Budget cancellation under parallelism: a deadline or cancel token
//! tripping *inside* a parallel layer must surface `BudgetExceeded`
//! promptly, and `std::thread::scope` must join every worker before the
//! error returns — no leaked threads, and the process stays healthy enough
//! to run the same optimization again afterwards.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::budget::{Budget, BudgetKind, CancelToken};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::{branch_bound, engine};
use std::time::{Duration, Instant};

/// A clique-ish instance big enough that the DP has work spanning many
/// layers (n = 15 → 32768 subsets) without being slow when unbudgeted.
fn big_instance(n: usize) -> QoNInstance {
    let mut g = Graph::new(n);
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(3 + (i as u64 % 7))).collect();
    for v in 1..n {
        for u in v.saturating_sub(3)..v {
            g.add_edge(u, v);
            let sel = BigRational::new(BigInt::one(), BigUint::from(3u64));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

#[test]
fn deadline_mid_layer_trips_promptly() {
    let inst = big_instance(15);
    let opts = engine::DpOptions { allow_cartesian: true, threads: 4 };
    // A deadline far shorter than the full run: it expires while workers
    // are deep inside some layer.
    let budget = Budget::unlimited().with_timeout(Duration::from_millis(2));
    std::thread::sleep(Duration::from_millis(3));
    let start = Instant::now();
    let err = engine::optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
    assert_eq!(err.kind, BudgetKind::Deadline);
    // Promptness: workers notice within their next clock-check period, not
    // after finishing the layer (the full unbudgeted run takes far longer).
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "cancellation took {:?}",
        start.elapsed()
    );
    // The scoped pool joined everything: the same instance still optimizes
    // to completion on a fresh budget in this very process.
    let ok = engine::optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
        .unwrap()
        .unwrap();
    let recost: BigRational = inst.total_cost(&ok.sequence);
    assert_eq!(recost, ok.cost);
}

#[test]
fn cancel_token_from_another_thread_stops_parallel_layers() {
    let inst = big_instance(16);
    let opts = engine::DpOptions { allow_cartesian: true, threads: 4 };
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel_token(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            token.cancel();
        })
    };
    let result = engine::optimize_two_phase::<BigRational>(&inst, &opts, &budget);
    canceller.join().expect("canceller thread");
    match result {
        // The usual outcome: the token fires mid-DP and every worker
        // unwinds with `Cancelled`.
        Err(err) => assert_eq!(err.kind, BudgetKind::Cancelled),
        // On a very fast machine the DP may legitimately finish first;
        // then the answer must be a valid optimum.
        Ok(Some(opt)) => {
            let recost: BigRational = inst.total_cost(&opt.sequence);
            assert_eq!(recost, opt.cost);
        }
        Ok(None) => panic!("connected instance reported infeasible"),
    }
}

#[test]
fn expansion_cap_shared_by_workers_trips_once() {
    let inst = big_instance(12);
    let opts = engine::DpOptions { allow_cartesian: true, threads: 4 };
    let cap = 500;
    let budget = Budget::unlimited().with_max_expansions(cap);
    let err = engine::optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
    assert_eq!(err.kind, BudgetKind::Expansions);
    // The counter is shared across workers: the recorded total reflects
    // all of them and sits just past the cap, not `threads ×` past it.
    assert!(err.expansions > cap);
    assert!(
        err.expansions < cap + 4 * 16,
        "expansion accounting drifted: {} for cap {cap}",
        err.expansions
    );
}

#[test]
fn parallel_bnb_deadline_trips_and_recovers() {
    let inst = big_instance(13);
    let budget = Budget::unlimited().with_timeout(Duration::from_millis(2));
    std::thread::sleep(Duration::from_millis(3));
    let err = branch_bound::optimize_par_with_budget::<BigRational>(&inst, true, 4, &budget)
        .unwrap_err();
    assert_eq!(err.kind, BudgetKind::Deadline);
    // Fresh budget, same process: the pool was fully joined.
    let seq = branch_bound::optimize_par_with_budget::<BigRational>(
        &inst,
        true,
        4,
        &Budget::unlimited(),
    )
    .unwrap()
    .unwrap();
    let recost: BigRational = inst.total_cost(&seq.sequence);
    assert_eq!(recost, seq.cost);
}
