//! Thread-count invariance of the deterministic observability counters:
//! the two-phase engine's `optimizer.engine.*` counters are computed on
//! the coordinating thread from layer geometry and phase-A estimates, so
//! they must be *identical* for every `threads` setting — the property the
//! CLI's `--metrics` comparison across `--threads 1` / `--threads 4` rests
//! on.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::budget::Budget;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::engine;
use proptest::prelude::*;
use std::sync::Mutex;

/// The metrics registry and enable flag are process-global; every test in
/// this file mutates them, so they serialize on this lock.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A QO_N instance on `n` vertices; `connected = false` leaves the last
/// vertex isolated so the graph has two components.
fn random_instance(seed: u64, n: usize, connected: bool) -> QoNInstance {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut g = Graph::new(n);
    let limit = if connected { n } else { n - 1 };
    for v in 1..limit {
        g.add_edge((next() % v as u64) as usize, v);
    }
    for _ in 0..n / 2 {
        let u = (next() % limit as u64) as usize;
        let v = (next() % limit as u64) as usize;
        if u != v {
            g.add_edge(u, v);
        }
    }
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 60)).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 12));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

/// Runs the two-phase engine with collection on and returns the
/// `optimizer.engine.*` counters it produced. Caller holds [`OBS_LOCK`].
fn engine_counters(
    inst: &QoNInstance,
    threads: usize,
    allow_cartesian: bool,
) -> Vec<(String, u64)> {
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    aqo_obs::set_enabled(true);
    let opts = engine::DpOptions { allow_cartesian, threads };
    let _ = engine::optimize_two_phase::<BigRational>(inst, &opts, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded");
    aqo_obs::set_enabled(false);
    let counters = aqo_obs::counters_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("optimizer.engine."))
        .collect();
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    counters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_counters_invariant_under_thread_count(
        seed in any::<u64>(),
        n in 4usize..=8,
        connected in any::<bool>(),
        allow_cartesian in any::<bool>(),
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let inst = random_instance(seed, n, connected);
        let base = engine_counters(&inst, 1, allow_cartesian);
        prop_assert!(
            base.iter().any(|(k, _)| k == "optimizer.engine.subsets_expanded"),
            "expansion counter missing: {base:?}"
        );
        for threads in [2usize, 4] {
            let got = engine_counters(&inst, threads, allow_cartesian);
            prop_assert_eq!(
                &base, &got,
                "connected={} allow={} threads={}", connected, allow_cartesian, threads
            );
        }
    }
}

#[test]
fn exact_recosts_counted_and_invariant() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inst = random_instance(7, 9, true);
    let base = engine_counters(&inst, 1, true);
    let recosts = |cs: &[(String, u64)]| {
        cs.iter().find(|(k, _)| k == "optimizer.engine.exact_recosts").map(|(_, v)| *v)
    };
    let base_recosts = recosts(&base).expect("two-phase run recosts at least the optimum layer");
    assert!(base_recosts > 0);
    for threads in [2usize, 3, 4] {
        let got = engine_counters(&inst, threads, true);
        assert_eq!(recosts(&got), Some(base_recosts), "threads {threads}");
        assert_eq!(base, got, "full counter set diverged at threads {threads}");
    }
}
