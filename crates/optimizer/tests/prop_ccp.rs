//! Properties of the DPccp tier (ISSUE satellite: connected-subgraph
//! enumeration correctness).
//!
//! Two families of checks:
//!
//! 1. **Enumeration exactness** — `optimizer.ccp.subsets_expanded` (and
//!    [`aqo_optimizer::ccp::connected_subset_count`]) must equal a
//!    brute-force scan that tests every one of the `2^n − 1` nonempty
//!    subsets for induced connectivity. The DP is only exact because the
//!    frontier covers *every* connected subgraph; an off-by-one here is a
//!    silent wrong answer, not a crash.
//! 2. **Cost agreement** — the plan cost returned by `ccp` equals the
//!    sequential `dp` oracle and the all-subsets `engine` on chains,
//!    cycles, cliques, and random sparse graphs, at 1/2/4 threads.

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::budget::Budget;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::{ccp, dp, engine};
use proptest::prelude::*;
use std::sync::Mutex;

/// The metrics registry and enable flag are process-global; every test
/// that reads counters serializes on this lock.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn instance_from_graph(g: Graph, seed: u64) -> QoNInstance {
    let n = g.n();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 50)).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 11));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn chain(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v);
    }
    g
}

fn cycle(n: usize) -> Graph {
    let mut g = chain(n);
    g.add_edge(n - 1, 0);
    g
}

fn clique(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Random sparse graph: a spanning tree (random parent per vertex) plus a
/// few extra edges — connected, with edge count well below the clique's.
fn sparse(n: usize, seed: u64) -> Graph {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge((next() % v as u64) as usize, v);
    }
    for _ in 0..n / 3 {
        let u = (next() % n as u64) as usize;
        let v = (next() % n as u64) as usize;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Brute force: count nonempty vertex subsets whose induced subgraph is
/// connected, by scanning all `2^n − 1` masks and flood-filling each.
fn brute_force_connected_count(g: &Graph) -> u64 {
    let n = g.n();
    assert!(n <= 20, "brute force scans 2^n masks");
    let nbr: Vec<u32> = (0..n)
        .map(|v| g.neighbors(v).iter().fold(0u32, |m, k| m | (1 << k)))
        .collect();
    let mut count = 0u64;
    for mask in 1u32..(1u32 << n) {
        let start = mask.trailing_zeros() as usize;
        let mut reached = 1u32 << start;
        loop {
            let mut grown = reached;
            let mut rest = reached;
            while rest != 0 {
                let v = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                grown |= nbr[v] & mask;
            }
            if grown == reached {
                break;
            }
            reached = grown;
        }
        if reached == mask {
            count += 1;
        }
    }
    count
}

/// Runs `ccp` with metrics collection on; returns the plan (if feasible)
/// and the `optimizer.ccp.subsets_expanded` counter. Caller holds
/// [`OBS_LOCK`].
fn ccp_run_with_counter(
    inst: &QoNInstance,
    threads: usize,
) -> (Option<aqo_optimizer::Optimum<BigRational>>, u64) {
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    aqo_obs::set_enabled(true);
    let opt = ccp::optimize_two_phase::<BigRational>(inst, threads, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded");
    aqo_obs::set_enabled(false);
    let expanded = aqo_obs::counters_snapshot()
        .into_iter()
        .find(|(name, _)| name == "optimizer.ccp.subsets_expanded")
        .map(|(_, v)| v)
        .expect("ccp run emits its expansion counter");
    aqo_obs::reset_metrics();
    aqo_obs::journal::clear();
    (opt, expanded)
}

#[test]
fn subsets_expanded_equals_brute_force_on_fixed_families() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cases: Vec<(Graph, u64)> = vec![
        (chain(9), 45),           // n(n+1)/2
        (cycle(9), 73),           // n(n−1)+1
        (clique(8), 255),         // 2^n − 1
        (sparse(10, 3), 0),       // closed form unknown: brute force below
        (sparse(12, 17), 0),
    ];
    for (g, closed_form) in cases {
        let expect = brute_force_connected_count(&g);
        if closed_form != 0 {
            assert_eq!(expect, closed_form, "closed form disagrees with scan");
        }
        let inst = instance_from_graph(g, 23);
        assert_eq!(ccp::connected_subset_count(&inst), expect);
        let (_, expanded) = ccp_run_with_counter(&inst, 2);
        assert_eq!(expanded, expect, "counter diverged from brute force");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn subsets_expanded_equals_brute_force_on_random_sparse(
        seed in any::<u64>(),
        n in 3usize..=11,
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let g = sparse(n, seed);
        let expect = brute_force_connected_count(&g);
        let inst = instance_from_graph(g, seed ^ 0xabcd);
        prop_assert_eq!(ccp::connected_subset_count(&inst), expect);
        let (opt, expanded) = ccp_run_with_counter(&inst, 1);
        prop_assert_eq!(expanded, expect);
        // The generator always builds a spanning tree, so a cartesian-free
        // sequence exists and the tier must find one.
        prop_assert!(opt.is_some());
    }

    #[test]
    fn ccp_cost_equals_dp_and_engine_on_all_families(
        seed in any::<u64>(),
        n in 3usize..=9,
        family in 0usize..4,
    ) {
        let g = match family {
            0 => chain(n),
            1 => cycle(n),
            2 => clique(n),
            _ => sparse(n, seed),
        };
        let inst = instance_from_graph(g, seed);
        let oracle = dp::optimize::<BigRational>(&inst, false);
        let opts = engine::DpOptions { allow_cartesian: false, threads: 2 };
        let eng = engine::optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded");
        for threads in [1usize, 2, 4] {
            let got = ccp::optimize_two_phase::<BigRational>(&inst, threads, &Budget::unlimited())
                .expect("unlimited budget cannot be exceeded");
            match (&oracle, &got) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(&a.cost, &b.cost, "family {} threads {}", family, threads);
                    prop_assert!(!inst.has_cartesian_product(&b.sequence));
                    let recost: BigRational = inst.total_cost(&b.sequence);
                    prop_assert_eq!(&recost, &b.cost);
                }
                (None, None) => {}
                other => prop_assert!(false, "feasibility mismatch: {:?}", other),
            }
        }
        match (&oracle, &eng) {
            (Some(a), Some(e)) => prop_assert_eq!(&a.cost, &e.cost),
            (None, None) => {}
            other => prop_assert!(false, "engine mismatch: {:?}", other),
        }
    }
}
