//! Exact optimization of SQO−CP star plans (paper Appendix A/B).
//!
//! After the second position of a feasible sequence, the state of the plan
//! is fully captured by the *set* of satellites already joined: the running
//! intermediate `n(W)` is a set function, and each later join's cost depends
//! only on `n(W)` and the incoming satellite. A DP over satellite subsets is
//! therefore exact; the exponential part is `2^m`, fine for the appendix's
//! experiment sizes. An exhaustive enumerator over all
//! `(m+1)! · 2^m` plans serves as the test oracle.

use aqo_bignum::BigRational;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::sqo::{JoinMethod, SqoCpInstance, StarPlan};

/// The exact optimum: best feasible plan and its cost.
pub fn optimize(inst: &SqoCpInstance) -> (StarPlan, BigRational) {
    optimize_with_budget(inst, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize`], under a cooperative [`Budget`]: the `2^m`-entry tables
/// are charged against the memory cap and each DP transition ticks.
pub fn optimize_with_budget(
    inst: &SqoCpInstance,
    budget: &Budget,
) -> Result<(StarPlan, BigRational), BudgetExceeded> {
    let m = inst.m();
    assert!(m >= 1, "need a satellite");
    assert!(m <= 24, "subset DP is for m <= 24");
    let full: usize = (1 << m) - 1;
    let entry = std::mem::size_of::<Option<BigRational>>() + 2 * std::mem::size_of::<usize>();
    budget.charge_memory(((full + 1) * entry) as u64)?;
    budget.checkpoint()?;
    // dp[set]: best cost with R_0 and satellites `set` (1-based ids mapped
    // to bits 0..m) joined; parents for reconstruction.
    let mut dp: Vec<Option<BigRational>> = vec![None; full + 1];
    // How the state was reached: either an initial pair or (prev_set, sat,
    // method).
    #[derive(Clone)]
    enum From {
        Start { order: [usize; 2], method: JoinMethod },
        Step { sat: usize, method: JoinMethod },
    }
    let mut from: Vec<Option<From>> = vec![None; full + 1];

    // n(set) precomputed incrementally.
    let mut nsize: Vec<BigRational> = vec![BigRational::zero(); full + 1];
    nsize[0] = BigRational::from(inst.tuples(0).clone());
    for set in 1..=full {
        let b = set.trailing_zeros() as usize;
        let sat = b + 1;
        nsize[set] = &nsize[set & (set - 1)]
            * &(BigRational::from(inst.tuples(sat).clone()) * inst.selectivity(sat));
    }

    // Initial pairs: R_0 with satellite t (four ways; SM is symmetric).
    for t in 1..=m {
        let bit = 1usize << (t - 1);
        let candidates = [
            // Start R_0, nested-loops join of R_t: b_0 + w_t·n_0.
            (
                BigRational::from(inst.pages(0).clone())
                    + BigRational::from(inst.w(t).clone())
                        * BigRational::from(inst.tuples(0).clone()),
                From::Start { order: [0, t], method: JoinMethod::NestedLoops },
            ),
            // Start R_t, nested-loops access of R_0: b_t + w_{0,t}·n_t.
            (
                BigRational::from(inst.pages(t).clone())
                    + BigRational::from(inst.w0(t).clone())
                        * BigRational::from(inst.tuples(t).clone()),
                From::Start { order: [t, 0], method: JoinMethod::NestedLoops },
            ),
            // Sort-merge either way: A_0 + A_t.
            (
                BigRational::from(inst.sort_cost(0).clone())
                    + BigRational::from(inst.sort_cost(t).clone()),
                From::Start { order: [0, t], method: JoinMethod::SortMerge },
            ),
        ];
        for (cost, f) in candidates {
            if dp[bit].as_ref().is_none_or(|cur| cost < *cur) {
                dp[bit] = Some(cost);
                from[bit] = Some(f);
            }
        }
    }

    // Transitions. Counted in a plain local and flushed once below.
    let mut transitions = 0u64;
    let ks_minus_1 = BigRational::from(inst.ks() - 1);
    for set in 1..=full {
        let Some(base) = dp[set].clone() else { continue };
        let nx = &nsize[set];
        for t in 1..=m {
            let bit = 1usize << (t - 1);
            if set & bit != 0 {
                continue;
            }
            budget.tick()?;
            transitions += 1;
            let nl = nx * &BigRational::from(inst.w(t).clone());
            let sm = nx * &ks_minus_1 + BigRational::from(inst.sort_cost(t).clone());
            for (step, method) in [(nl, JoinMethod::NestedLoops), (sm, JoinMethod::SortMerge)] {
                let cand = &base + &step;
                let ns = set | bit;
                if dp[ns].as_ref().is_none_or(|cur| cand < *cur) {
                    dp[ns] = Some(cand);
                    from[ns] = Some(From::Step { sat: t, method });
                }
            }
        }
    }

    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("optimizer.star.transitions").add(transitions);
    }

    // Reconstruct.
    let cost = dp[full].clone().expect("full state reachable");
    let mut order_rev: Vec<usize> = Vec::new();
    let mut methods_rev: Vec<JoinMethod> = Vec::new();
    let mut set = full;
    loop {
        match from[set].clone().expect("reached state has provenance") {
            From::Step { sat, method } => {
                order_rev.push(sat);
                methods_rev.push(method);
                set &= !(1 << (sat - 1));
            }
            From::Start { order, method } => {
                order_rev.push(order[1]);
                methods_rev.push(method);
                order_rev.push(order[0]);
                break;
            }
        }
    }
    order_rev.reverse();
    methods_rev.reverse();
    let plan = StarPlan::new(order_rev, methods_rev);
    debug_assert_eq!(inst.plan_cost(&plan), cost);
    Ok((plan, cost))
}

/// Exhaustive oracle: every feasible order and every method vector
/// (`m ≤ 7`).
pub fn optimize_exhaustive(inst: &SqoCpInstance) -> (StarPlan, BigRational) {
    optimize_exhaustive_with_budget(inst, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize_exhaustive`], under a cooperative [`Budget`] ticked once
/// per (order, method-vector) candidate.
pub fn optimize_exhaustive_with_budget(
    inst: &SqoCpInstance,
    budget: &Budget,
) -> Result<(StarPlan, BigRational), BudgetExceeded> {
    let m = inst.m();
    assert!((1..=7).contains(&m), "exhaustive star search is for m in 1..=7");
    let mut best: Option<(StarPlan, BigRational)> = None;
    let mut plans_costed = 0u64;
    for perm in aqo_core::join::permutations(m + 1) {
        let pos0 = perm.iter().position(|&v| v == 0).expect("0 present");
        if pos0 > 1 {
            continue; // cartesian product
        }
        for mask in 0u32..(1 << m) {
            budget.tick()?;
            plans_costed += 1;
            let methods: Vec<JoinMethod> = (0..m)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        JoinMethod::SortMerge
                    } else {
                        JoinMethod::NestedLoops
                    }
                })
                .collect();
            let plan = StarPlan::new(perm.clone(), methods);
            let cost = inst.plan_cost(&plan);
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
    }
    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("optimizer.star.plans_costed").add(plans_costed);
    }
    Ok(best.expect("at least one feasible plan"))
}

/// The SQO−CP decision problem: is there a feasible plan of cost `≤ bound`?
pub fn decide(inst: &SqoCpInstance, bound: &BigRational) -> bool {
    optimize(inst).1 <= *bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigUint};

    fn instance(seed: u64, m: usize) -> SqoCpInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let ks = 4;
        let len = m + 1;
        let tuples: Vec<BigUint> = (0..len).map(|_| BigUint::from(4 + next() % 60)).collect();
        let pages = tuples.clone();
        let sort_cost: Vec<BigUint> = pages.iter().map(|b| b * &BigUint::from(ks)).collect();
        let mut selectivity = vec![BigRational::one()];
        for t in tuples.iter().skip(1) {
            // s_i = p_i / n_i with p_i small.
            let p = 1 + next() % 4;
            selectivity
                .push(BigRational::new(BigInt::from(p.min(t.to_u64().unwrap())), t.clone()));
        }
        let w: Vec<BigUint> = (0..len).map(|_| BigUint::from(1 + next() % 20)).collect();
        let w0: Vec<BigUint> = (0..len).map(|_| BigUint::from(1 + next() % 20)).collect();
        SqoCpInstance::new(ks, tuples, pages, sort_cost, selectivity, w, w0)
    }

    #[test]
    fn dp_matches_exhaustive() {
        for seed in 0..10u64 {
            for m in 2..=4usize {
                let inst = instance(seed, m);
                let (plan_dp, cost_dp) = optimize(&inst);
                let (_, cost_ex) = optimize_exhaustive(&inst);
                assert_eq!(cost_dp, cost_ex, "seed={seed} m={m}");
                assert_eq!(inst.plan_cost(&plan_dp), cost_dp);
            }
        }
    }

    #[test]
    fn decide_thresholds() {
        let inst = instance(3, 3);
        let (_, opt) = optimize(&inst);
        assert!(decide(&inst, &opt));
        let below = &opt - &BigRational::one();
        assert!(!decide(&inst, &below));
        let above = &opt + &BigRational::one();
        assert!(decide(&inst, &above));
    }

    #[test]
    fn budget_trips_in_dp_and_exhaustive() {
        let inst = instance(5, 6);
        let tiny = Budget::unlimited().with_max_expansions(4);
        let err = optimize_with_budget(&inst, &tiny).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);

        let inst_small = instance(5, 4);
        let tiny = Budget::unlimited().with_max_expansions(4);
        let err = optimize_exhaustive_with_budget(&inst_small, &tiny).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);

        let roomy = Budget::unlimited().with_max_expansions(10_000_000);
        let (_, cost_b) = optimize_with_budget(&inst, &roomy).unwrap();
        let (_, cost_free) = optimize(&inst);
        assert_eq!(cost_b, cost_free);
    }

    #[test]
    fn single_satellite() {
        let inst = instance(9, 1);
        let (plan, cost) = optimize(&inst);
        assert_eq!(plan.order.len(), 2);
        assert_eq!(inst.plan_cost(&plan), cost);
    }
}
