//! Exhaustive QO_N optimization over all `n!` join sequences.

use crate::Optimum;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::join::permutations;
use aqo_core::parallel::{resolve_threads, run_workers};
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};

/// Maximum `n` accepted; `12! ≈ 4.8·10⁸` is already past the point of sanity.
pub const MAX_N: usize = 10;

/// Flush a locally accumulated permutation count to the metrics registry.
/// Workers call this once on successful completion, so a sweep that trips
/// the budget contributes nothing (see docs/OBSERVABILITY.md).
fn flush_perms_costed(costed: u64) {
    if aqo_obs::enabled() && costed > 0 {
        aqo_obs::counter_handle!("optimizer.exhaustive.perms_costed").add(costed);
    }
}

/// Finds an optimal sequence by trying every permutation. Panics for
/// `n > `[`MAX_N`] — use [`crate::dp`] instead.
pub fn optimize<S: CostScalar>(inst: &QoNInstance) -> Optimum<S> {
    optimize_with_budget(inst, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize`], under a cooperative [`Budget`] ticked once per
/// permutation.
pub fn optimize_with_budget<S: CostScalar>(
    inst: &QoNInstance,
    budget: &Budget,
) -> Result<Optimum<S>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "exhaustive search is for n in 1..={MAX_N}");
    let mut best: Option<Optimum<S>> = None;
    let mut costed = 0u64;
    for perm in permutations(n) {
        budget.tick()?;
        costed += 1;
        let z = JoinSequence::new(perm);
        let cost: S = inst.total_cost(&z);
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(Optimum { sequence: z, cost });
        }
    }
    flush_perms_costed(costed);
    Ok(best.expect("at least one permutation"))
}

/// Parallel [`optimize`]: worker `t` costs every permutation whose
/// lexicographic index is `≡ t (mod threads)`. Workers are reduced by
/// `(cost, index)`, so the winner is the lowest-index permutation of
/// minimal cost — exactly the sequence the sequential scan returns, for
/// every thread count. `threads = 0` means one worker per hardware thread.
pub fn optimize_par_with_budget<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    threads: usize,
    budget: &Budget,
) -> Result<Optimum<S>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "exhaustive search is for n in 1..={MAX_N}");
    let threads = resolve_threads(threads);
    let outcomes = run_workers(threads, |t| -> Result<Option<(S, usize, Vec<usize>)>, BudgetExceeded> {
        let mut best: Option<(S, usize, Vec<usize>)> = None;
        let mut costed = 0u64;
        for (i, perm) in permutations(n).enumerate() {
            if i % threads != t {
                continue;
            }
            budget.tick()?;
            costed += 1;
            let z = JoinSequence::new(perm);
            let cost: S = inst.total_cost(&z);
            if best.as_ref().is_none_or(|(b, _, _)| cost < *b) {
                best = Some((cost, i, z.order().to_vec()));
            }
        }
        flush_perms_costed(costed);
        Ok(best)
    });
    let mut best: Option<(S, usize, Vec<usize>)> = None;
    for outcome in outcomes {
        if let Some((cost, i, order)) = outcome? {
            let better = match &best {
                None => true,
                Some((b, bi, _)) => cost < *b || (cost == *b && i < *bi),
            };
            if better {
                best = Some((cost, i, order));
            }
        }
    }
    let (cost, _, order) = best.expect("at least one permutation");
    Ok(Optimum { sequence: JoinSequence::new(order), cost })
}

/// As [`optimize`], restricted to sequences without cartesian products.
/// Returns `None` when every sequence has one (disconnected query graph).
pub fn optimize_no_cartesian<S: CostScalar>(inst: &QoNInstance) -> Option<Optimum<S>> {
    optimize_no_cartesian_with_budget(inst, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize_no_cartesian`], under a cooperative [`Budget`] ticked
/// once per permutation.
pub fn optimize_no_cartesian_with_budget<S: CostScalar>(
    inst: &QoNInstance,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "exhaustive search is for n in 1..={MAX_N}");
    let mut best: Option<Optimum<S>> = None;
    let mut costed = 0u64;
    for perm in permutations(n) {
        budget.tick()?;
        let z = JoinSequence::new(perm);
        if n > 1 && inst.has_cartesian_product(&z) {
            continue;
        }
        costed += 1;
        let cost: S = inst.total_cost(&z);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Optimum { sequence: z, cost });
        }
    }
    flush_perms_costed(costed);
    Ok(best)
}

/// Parallel [`optimize_no_cartesian`] with the same strided schedule and
/// `(cost, index)` reduction as [`optimize_par_with_budget`].
pub fn optimize_no_cartesian_par_with_budget<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    threads: usize,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "exhaustive search is for n in 1..={MAX_N}");
    let threads = resolve_threads(threads);
    let outcomes = run_workers(threads, |t| -> Result<Option<(S, usize, Vec<usize>)>, BudgetExceeded> {
        let mut best: Option<(S, usize, Vec<usize>)> = None;
        let mut costed = 0u64;
        for (i, perm) in permutations(n).enumerate() {
            if i % threads != t {
                continue;
            }
            budget.tick()?;
            let z = JoinSequence::new(perm);
            if n > 1 && inst.has_cartesian_product(&z) {
                continue;
            }
            costed += 1;
            let cost: S = inst.total_cost(&z);
            if best.as_ref().is_none_or(|(b, _, _)| cost < *b) {
                best = Some((cost, i, z.order().to_vec()));
            }
        }
        flush_perms_costed(costed);
        Ok(best)
    });
    let mut best: Option<(S, usize, Vec<usize>)> = None;
    for outcome in outcomes {
        if let Some((cost, i, order)) = outcome? {
            let better = match &best {
                None => true,
                Some((b, bi, _)) => cost < *b || (cost == *b && i < *bi),
            };
            if better {
                best = Some((cost, i, order));
            }
        }
    }
    Ok(best.map(|(cost, _, order)| Optimum { sequence: JoinSequence::new(order), cost }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn chain(n: usize) -> QoNInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(4 + 2 * i as u64)).collect();
        for v in 1..n {
            g.add_edge(v - 1, v);
            let sel = BigRational::new(BigInt::one(), BigUint::from(2u64));
            s.set(v - 1, v, sel.clone());
            for (j, k) in [(v - 1, v), (v, v - 1)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn single_relation() {
        let inst = chain(1);
        let opt: Optimum<BigRational> = optimize(&inst);
        assert_eq!(opt.sequence.order(), &[0]);
        assert!(opt.cost.is_zero());
    }

    #[test]
    fn optimum_is_minimal_over_all() {
        let inst = chain(5);
        let opt: Optimum<BigRational> = optimize(&inst);
        for perm in permutations(5) {
            let z = JoinSequence::new(perm);
            let c: BigRational = inst.total_cost(&z);
            assert!(opt.cost <= c);
        }
    }

    #[test]
    fn no_cartesian_restriction_is_weakly_worse() {
        let inst = chain(5);
        let free: Optimum<BigRational> = optimize(&inst);
        let restricted = optimize_no_cartesian::<BigRational>(&inst).unwrap();
        assert!(free.cost <= restricted.cost);
        assert!(!inst.has_cartesian_product(&restricted.sequence));
    }

    #[test]
    fn budget_limits_enumeration() {
        let inst = chain(6);
        let budget = Budget::unlimited().with_max_expansions(10);
        let err = optimize_with_budget::<BigRational>(&inst, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
        assert_eq!(err.expansions, 11);
    }

    #[test]
    fn parallel_returns_the_sequential_winner_exactly() {
        let inst = chain(6);
        let seq: Optimum<BigRational> = optimize(&inst);
        let seq_nc = optimize_no_cartesian::<BigRational>(&inst).unwrap();
        for threads in [1usize, 2, 5] {
            let par =
                optimize_par_with_budget::<BigRational>(&inst, threads, &Budget::unlimited())
                    .unwrap();
            assert_eq!(par.cost, seq.cost);
            assert_eq!(par.sequence.order(), seq.sequence.order(), "threads {threads}");
            let par_nc = optimize_no_cartesian_par_with_budget::<BigRational>(
                &inst,
                threads,
                &Budget::unlimited(),
            )
            .unwrap()
            .unwrap();
            assert_eq!(par_nc.cost, seq_nc.cost);
            assert_eq!(par_nc.sequence.order(), seq_nc.sequence.order());
        }
    }

    #[test]
    fn parallel_budget_trips() {
        let inst = chain(6);
        let budget = Budget::unlimited().with_max_expansions(10);
        let err = optimize_par_with_budget::<BigRational>(&inst, 3, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
    }

    #[test]
    fn disconnected_graph_has_no_cartesian_free_sequence() {
        let g = Graph::new(3);
        let sizes = vec![BigUint::from(2u64); 3];
        let inst = QoNInstance::new(g, sizes, SelectivityMatrix::new(), AccessCostMatrix::new());
        assert!(optimize_no_cartesian::<BigRational>(&inst).is_none());
        // But the unrestricted optimum exists.
        let opt: Optimum<BigRational> = optimize(&inst);
        assert!(opt.cost.is_positive());
    }
}
