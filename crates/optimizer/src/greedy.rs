//! Polynomial-time greedy heuristics for QO_N.
//!
//! These are the classical baselines whose competitive ratio the paper's
//! theorems bound away from any polylogarithmic factor: on random instances
//! they do fine; on the reduction-produced adversarial instances they are
//! exponentially off (experiment F2).

use aqo_bignum::LogNum;
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};
use aqo_graph::BitSet;

/// Greedy by smallest next intermediate: start from the smallest relation,
/// repeatedly append the relation minimizing `N(prefix ∪ {j})`.
///
/// With `allow_cartesian = false` only adjacent candidates are considered;
/// returns `None` if the walk gets stuck (disconnected graph).
pub fn min_intermediate(inst: &QoNInstance, allow_cartesian: bool) -> Option<JoinSequence> {
    greedy_by(inst, allow_cartesian, |_inst, _prefix, _j, new_n, _step| new_n)
}

/// Greedy by cheapest next join: repeatedly append the relation with the
/// smallest incremental cost `H`.
pub fn min_incremental_cost(inst: &QoNInstance, allow_cartesian: bool) -> Option<JoinSequence> {
    greedy_by(inst, allow_cartesian, |_inst, _prefix, _j, _new_n, step| step)
}

/// Shared greedy skeleton; `score` ranks candidates (smaller is better) from
/// `(instance, prefix, candidate, resulting N, incremental cost)`.
fn greedy_by(
    inst: &QoNInstance,
    allow_cartesian: bool,
    score: impl Fn(&QoNInstance, &[usize], usize, LogNum, LogNum) -> LogNum,
) -> Option<JoinSequence> {
    let n = inst.n();
    if n == 0 {
        return Some(JoinSequence::identity(0));
    }
    // Start from the smallest relation (ties: lowest index).
    let start = (0..n).min_by(|&a, &b| inst.sizes()[a].cmp(&inst.sizes()[b]))?;
    let mut order = vec![start];
    let mut in_prefix = BitSet::new(n);
    in_prefix.insert(start);
    let mut n_x = LogNum::from_log2(inst.sizes()[start].log2());

    while order.len() < n {
        let mut best: Option<(LogNum, usize, LogNum, LogNum)> = None; // (score, j, new_n, step)
        for j in 0..n {
            if in_prefix.contains(j) {
                continue;
            }
            let mut nbr = 0usize;
            let mut w_min: Option<LogNum> = None;
            let mut new_n = n_x * LogNum::from_log2(inst.sizes()[j].log2());
            for k in inst.graph().neighbors(j).iter() {
                if in_prefix.contains(k) {
                    nbr += 1;
                    let w = LogNum::from_log2(inst.w(j, k).log2());
                    w_min = Some(w_min.map_or(w, |cur| cur.min(w)));
                    new_n = new_n * LogNum::from_log2(inst.selectivity().get(j, k).log2());
                }
            }
            if nbr == 0 && !allow_cartesian {
                continue;
            }
            if nbr < order.len() {
                let tj = LogNum::from_log2(inst.sizes()[j].log2());
                w_min = Some(w_min.map_or(tj, |cur| cur.min(tj)));
            }
            let step = n_x * w_min.expect("prefix nonempty");
            let sc = score(inst, &order, j, new_n, step);
            if best.as_ref().is_none_or(|(b, _, _, _)| sc < *b) {
                best = Some((sc, j, new_n, step));
            }
        }
        let (_, j, new_n, _) = best?;
        order.push(j);
        in_prefix.insert(j);
        n_x = new_n;
    }
    Some(JoinSequence::new(order))
}

/// A uniformly random sequence (the weakest baseline).
pub fn random_sequence(n: usize, rng: &mut impl rand::Rng) -> JoinSequence {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    JoinSequence::new(order)
}

/// Competitive ratio in log₂: `log₂(heuristic cost) − log₂(optimal cost)`.
/// A value of `k` means the heuristic is a factor `2^k` off.
pub fn log2_ratio<S: CostScalar>(heuristic_cost: &S, optimal_cost: &S) -> f64 {
    heuristic_cost.log2() - optimal_cost.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn star(n: usize) -> QoNInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(2 + 3 * i as u64)).collect();
        for v in 1..n {
            g.add_edge(0, v);
            let sel = BigRational::new(BigInt::one(), BigUint::from(2u64));
            s.set(0, v, sel.clone());
            for (j, k) in [(0, v), (v, 0)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn greedy_yields_valid_sequences() {
        let inst = star(7);
        for z in [
            min_intermediate(&inst, true).unwrap(),
            min_intermediate(&inst, false).unwrap(),
            min_incremental_cost(&inst, true).unwrap(),
        ] {
            assert_eq!(z.len(), 7);
            let c: BigRational = inst.total_cost(&z);
            assert!(c.is_positive());
        }
    }

    #[test]
    fn no_cartesian_flag_respected() {
        let inst = star(6);
        let z = min_intermediate(&inst, false).unwrap();
        assert!(!inst.has_cartesian_product(&z));
    }

    #[test]
    fn greedy_never_beats_optimum() {
        let inst = star(6);
        let opt: crate::Optimum<BigRational> = exhaustive::optimize(&inst);
        for z in [
            min_intermediate(&inst, true).unwrap(),
            min_incremental_cost(&inst, true).unwrap(),
        ] {
            let c: BigRational = inst.total_cost(&z);
            assert!(c >= opt.cost);
            assert!(log2_ratio(&c, &opt.cost) >= -1e-9);
        }
    }

    #[test]
    fn stuck_on_disconnected_without_cartesian() {
        let inst = QoNInstance::new(
            Graph::new(3),
            vec![BigUint::from(2u64); 3],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        assert!(min_intermediate(&inst, false).is_none());
        assert!(min_intermediate(&inst, true).is_some());
    }

    #[test]
    fn random_sequence_is_permutation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let z = random_sequence(9, &mut rng);
        assert_eq!(z.len(), 9);
    }
}
