//! QO_H plan optimization: optimal pipeline decomposition of a given join
//! sequence, and exhaustive search over sequences at small `n`.
//!
//! For a fixed sequence the decomposition problem is an interval partition:
//! `dp[k]` = cheapest way to execute joins `J_1 … J_k` with a fragment
//! ending at `k`, where each candidate fragment is costed under its optimal
//! memory allocation ([`aqo_core::qoh::QoHInstance::optimal_allocation`]).
//! Fragment costs are independent of the decomposition around them, so the
//! DP is exact.

use aqo_bignum::BigRational;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::qoh::{PipelineDecomposition, QoHInstance};
use aqo_core::JoinSequence;

/// Flush locally accumulated sequence tallies to the metrics registry.
/// Called once per run (or per worker, on successful completion), so a
/// budget-tripped sweep contributes nothing (see docs/OBSERVABILITY.md).
fn flush_sequence_counts(costed: u64, infeasible: u64) {
    if !aqo_obs::enabled() {
        return;
    }
    if costed > 0 {
        aqo_obs::counter_handle!("optimizer.pipeline.sequences_costed").add(costed);
    }
    if infeasible > 0 {
        aqo_obs::counter_handle!("optimizer.pipeline.sequences_infeasible").add(infeasible);
    }
}

/// A fully resolved QO_H plan.
#[derive(Clone, Debug)]
pub struct QohPlan {
    /// The join sequence.
    pub sequence: JoinSequence,
    /// Its optimal pipeline decomposition.
    pub decomposition: PipelineDecomposition,
    /// Exact cost under per-fragment optimal memory allocation.
    pub cost: BigRational,
}

/// Optimal pipeline decomposition of `z`; `None` if some join is infeasible
/// under any decomposition (inner relation too big for `M`).
pub fn best_decomposition(
    inst: &QoHInstance,
    z: &JoinSequence,
) -> Option<(PipelineDecomposition, BigRational)> {
    let n = z.len();
    assert!(n >= 2, "need at least one join");
    let inter: Vec<BigRational> = inst.intermediates(z);
    // dp[k] (1-based join index): best cost for J_1..J_k; back[k] = fragment
    // start of the last fragment.
    let mut dp: Vec<Option<BigRational>> = vec![None; n];
    let mut back: Vec<usize> = vec![0; n];
    dp[0] = Some(BigRational::zero());
    for k in 1..n {
        for i in 1..=k {
            let Some(prev) = dp[i - 1].clone() else { continue };
            let Some(alloc) = inst.optimal_allocation(z, (i, k), &inter) else { continue };
            let frag_cost = inst
                .fragment_cost(z, (i, k), &alloc, &inter)
                .expect("optimal allocation is feasible");
            let cand = &prev + &frag_cost;
            if dp[k].as_ref().is_none_or(|cur| cand < *cur) {
                dp[k] = Some(cand);
                back[k] = i;
            }
        }
    }
    let cost = dp[n - 1].clone()?;
    let mut fragments = Vec::new();
    let mut k = n - 1;
    while k >= 1 {
        let i = back[k];
        fragments.push((i, k));
        k = i - 1;
    }
    fragments.reverse();
    Some((PipelineDecomposition::new(n, fragments), cost))
}

/// Exhaustive QO_H optimum: every sequence (`n ≤ 9`), each with its optimal
/// decomposition. Returns `None` when no sequence is feasible.
pub fn optimize_exhaustive(inst: &QoHInstance) -> Option<QohPlan> {
    optimize_exhaustive_with_budget(inst, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize_exhaustive`], under a cooperative [`Budget`] ticked once
/// per candidate sequence (each tick covers one `O(n²)` decomposition DP).
pub fn optimize_exhaustive_with_budget(
    inst: &QoHInstance,
    budget: &Budget,
) -> Result<Option<QohPlan>, BudgetExceeded> {
    let n = inst.n();
    assert!((2..=9).contains(&n), "exhaustive QO_H search is for n in 2..=9");
    let mut best: Option<QohPlan> = None;
    let mut costed = 0u64;
    let mut infeasible = 0u64;
    for perm in aqo_core::join::permutations(n) {
        budget.tick()?;
        let z = JoinSequence::new(perm);
        if !inst.sequence_feasible(&z) {
            infeasible += 1;
            continue;
        }
        costed += 1;
        if let Some((decomp, cost)) = best_decomposition(inst, &z) {
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(QohPlan { sequence: z, decomposition: decomp, cost });
            }
        }
    }
    flush_sequence_counts(costed, infeasible);
    Ok(best)
}

/// Parallel [`optimize_exhaustive`]: worker `t` decomposes every feasible
/// sequence whose lexicographic index is `≡ t (mod threads)` and workers
/// are reduced by `(cost, index)` — the winner is the lowest-index sequence
/// of minimal cost, exactly what the sequential scan returns, for every
/// thread count. `threads = 0` means one worker per hardware thread.
pub fn optimize_exhaustive_par_with_budget(
    inst: &QoHInstance,
    threads: usize,
    budget: &Budget,
) -> Result<Option<QohPlan>, BudgetExceeded> {
    use aqo_core::parallel::{resolve_threads, run_workers};
    let n = inst.n();
    assert!((2..=9).contains(&n), "exhaustive QO_H search is for n in 2..=9");
    let threads = resolve_threads(threads);
    let outcomes = run_workers(threads, |t| -> Result<Option<(QohPlan, usize)>, BudgetExceeded> {
        let mut best: Option<(QohPlan, usize)> = None;
        let mut costed = 0u64;
        let mut infeasible = 0u64;
        for (i, perm) in aqo_core::join::permutations(n).enumerate() {
            if i % threads != t {
                continue;
            }
            budget.tick()?;
            let z = JoinSequence::new(perm);
            if !inst.sequence_feasible(&z) {
                infeasible += 1;
                continue;
            }
            costed += 1;
            if let Some((decomp, cost)) = best_decomposition(inst, &z) {
                if best.as_ref().is_none_or(|(b, _)| cost < b.cost) {
                    best = Some((QohPlan { sequence: z, decomposition: decomp, cost }, i));
                }
            }
        }
        flush_sequence_counts(costed, infeasible);
        Ok(best)
    });
    let mut best: Option<(QohPlan, usize)> = None;
    for outcome in outcomes {
        if let Some((plan, i)) = outcome? {
            let better = match &best {
                None => true,
                Some((b, bi)) => plan.cost < b.cost || (plan.cost == b.cost && i < *bi),
            };
            if better {
                best = Some((plan, i));
            }
        }
    }
    Ok(best.map(|(plan, _)| plan))
}

/// Polynomial-time QO_H heuristic: a greedy min-intermediate sequence
/// (respecting feasibility — relations whose `hjmin` exceeds `M` must come
/// first) followed by the exact decomposition DP, then improved by 2-opt
/// position swaps until a local optimum.
///
/// Returns `None` when no feasible sequence exists at all.
// analyze:allow(budget-hook-coverage) -- greedy + 2-opt does polynomial
// work (O(n^3) DP re-evaluations at worst); only the exponential searches
// take a Budget.
pub fn optimize_greedy(inst: &QoHInstance) -> Option<QohPlan> {
    let n = inst.n();
    assert!(n >= 2);
    // Unbuildable relations (hjmin > M) can only ever be the outermost; more
    // than one of them means no feasible sequence.
    let unbuildable: Vec<usize> =
        (0..n).filter(|&v| inst.hjmin(&inst.sizes()[v]) > *inst.memory()).collect();
    if unbuildable.len() > 1 {
        return None;
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let start = unbuildable.first().copied().unwrap_or_else(|| {
        (0..n).min_by(|&a, &b| inst.sizes()[a].cmp(&inst.sizes()[b])).expect("n >= 2")
    });
    order.push(start);
    let mut used = vec![false; n];
    used[start] = true;
    // Greedy: append the relation minimizing the resulting intermediate
    // (log-domain), among adjacency-connected candidates when any exist.
    let mut log_n = inst.sizes()[start].log2();
    while order.len() < n {
        let mut best: Option<(f64, usize)> = None;
        let connected_exists = (0..n).any(|j| {
            !used[j] && inst.graph().neighbors(j).iter().any(|k| used[k])
        });
        for j in 0..n {
            if used[j] || (unbuildable.contains(&j)) {
                continue;
            }
            let adjacent = inst.graph().neighbors(j).iter().any(|k| used[k]);
            if connected_exists && !adjacent {
                continue;
            }
            let mut cand = log_n + inst.sizes()[j].log2();
            for k in inst.graph().neighbors(j).iter() {
                if used[k] {
                    cand += inst.selectivity().get(j, k).log2();
                }
            }
            if best.is_none_or(|(b, _)| cand < b) {
                best = Some((cand, j));
            }
        }
        let (new_log, j) = best?;
        order.push(j);
        used[j] = true;
        log_n = new_log;
    }
    let mut z = JoinSequence::new(order);
    let (mut decomp, mut cost) = best_decomposition(inst, &z)?;
    // 2-opt improvement over position swaps (never moves an unbuildable
    // relation out of front position).
    let first_pinned = !unbuildable.is_empty();
    let lo = if first_pinned { 1 } else { 0 };
    loop {
        let mut improved = false;
        for i in lo..n {
            for j in i + 1..n {
                let mut cand_order = z.order().to_vec();
                cand_order.swap(i, j);
                let cand = JoinSequence::new(cand_order);
                if !inst.sequence_feasible(&cand) {
                    continue;
                }
                if let Some((d, c)) = best_decomposition(inst, &cand) {
                    if c < cost {
                        z = cand;
                        decomp = d;
                        cost = c;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    Some(QohPlan { sequence: z, decomposition: decomp, cost })
}

/// Brute-force check helper: the best decomposition found by trying *every*
/// interval partition (exponential; test oracle only, `n ≤ 12`).
pub fn best_decomposition_bruteforce(
    inst: &QoHInstance,
    z: &JoinSequence,
) -> Option<(PipelineDecomposition, BigRational)> {
    let n = z.len();
    let joins = n - 1;
    let mut best: Option<(PipelineDecomposition, BigRational)> = None;
    // Each bit of `mask` decides whether a fragment boundary follows join i.
    for mask in 0u32..(1 << (joins.saturating_sub(1))) {
        let mut fragments = Vec::new();
        let mut start = 1usize;
        for j in 1..joins {
            if mask >> (j - 1) & 1 == 1 {
                fragments.push((start, j));
                start = j + 1;
            }
        }
        fragments.push((start, joins));
        let decomp = PipelineDecomposition::new(n, fragments);
        if let Some(cost) = inst.plan_cost_optimal_alloc(z, &decomp) {
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((decomp, cost));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqo_bignum::{BigInt, BigUint};
    use aqo_core::SelectivityMatrix;
    use aqo_graph::Graph;

    fn path(n: usize, mem: u64) -> QoHInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        for v in 1..n {
            g.add_edge(v - 1, v);
            s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(8u64)));
        }
        QoHInstance::new(g, vec![BigUint::from(256u64); n], s, BigUint::from(mem))
    }

    #[test]
    fn dp_matches_bruteforce() {
        for mem in [40u64, 100, 300, 600] {
            let inst = path(5, mem);
            let z = JoinSequence::identity(5);
            let dp = best_decomposition(&inst, &z);
            let brute = best_decomposition_bruteforce(&inst, &z);
            match (dp, brute) {
                (Some((_, c1)), Some((_, c2))) => assert_eq!(c1, c2, "mem={mem}"),
                (None, None) => {}
                other => panic!("feasibility mismatch at mem={mem}: {other:?}"),
            }
        }
    }

    #[test]
    fn tight_memory_forces_materialization() {
        // With memory for only one inner relation's hjmin at a time plus a
        // little, long pipelines become infeasible and the DP must split.
        let inst = path(5, 17); // hjmin(256) = 16
        let z = JoinSequence::identity(5);
        let (decomp, _) = best_decomposition(&inst, &z).unwrap();
        assert_eq!(decomp.fragments().len(), 4, "every join in its own fragment");
    }

    #[test]
    fn ample_memory_prefers_single_pipeline() {
        let inst = path(5, 4 * 256);
        let z = JoinSequence::identity(5);
        let (decomp, cost) = best_decomposition(&inst, &z).unwrap();
        assert_eq!(decomp.fragments().len(), 1);
        let single = inst
            .plan_cost_optimal_alloc(&z, &PipelineDecomposition::single_pipeline(5))
            .unwrap();
        assert_eq!(cost, single);
    }

    #[test]
    fn exhaustive_finds_feasible_optimum() {
        let inst = path(4, 200);
        let plan = optimize_exhaustive(&inst).unwrap();
        // Every other sequence/decomposition must cost at least as much.
        for perm in aqo_core::join::permutations(4) {
            let z = JoinSequence::new(perm);
            if let Some((_, c)) = best_decomposition(&inst, &z) {
                assert!(plan.cost <= c);
            }
        }
    }

    #[test]
    fn budget_limits_sequence_enumeration() {
        let inst = path(6, 300);
        let budget = Budget::unlimited().with_max_expansions(4);
        let err = optimize_exhaustive_with_budget(&inst, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);

        let roomy = Budget::unlimited().with_max_expansions(1_000_000);
        let budgeted = optimize_exhaustive_with_budget(&inst, &roomy).unwrap().unwrap();
        let free = optimize_exhaustive(&inst).unwrap();
        assert_eq!(budgeted.cost, free.cost);
    }

    #[test]
    fn parallel_exhaustive_matches_sequential_exactly() {
        for mem in [60u64, 200, 700] {
            let inst = path(5, mem);
            let seq = optimize_exhaustive(&inst);
            for threads in [1usize, 2, 4] {
                let par =
                    optimize_exhaustive_par_with_budget(&inst, threads, &Budget::unlimited())
                        .unwrap();
                match (&seq, &par) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.cost, b.cost, "mem={mem} threads={threads}");
                        assert_eq!(a.sequence.order(), b.sequence.order());
                        assert_eq!(a.decomposition.fragments(), b.decomposition.fragments());
                    }
                    (None, None) => {}
                    other => panic!("feasibility mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn infeasible_instance_returns_none() {
        // Memory below hjmin of every relation: no join can ever run.
        let inst = path(3, 2);
        assert!(optimize_exhaustive(&inst).is_none());
        assert!(optimize_greedy(&inst).is_none());
    }

    #[test]
    fn greedy_matches_or_trails_exhaustive() {
        for mem in [60u64, 200, 700] {
            let inst = path(5, mem);
            let greedy = optimize_greedy(&inst);
            let exact = optimize_exhaustive(&inst);
            match (greedy, exact) {
                (Some(g), Some(e)) => {
                    assert!(g.cost >= e.cost, "greedy beat the exhaustive optimum?!");
                    // On a symmetric path with uniform sizes it should tie.
                    assert_eq!(g.cost, e.cost, "mem={mem}");
                }
                (None, None) => {}
                other => panic!("feasibility disagreement at mem={mem}: {other:?}"),
            }
        }
    }

    #[test]
    fn greedy_respects_unbuildable_front() {
        // One giant relation that cannot be built: it must lead.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        s.set(1, 2, BigRational::new(BigInt::one(), BigUint::from(4u64)));
        let inst = QoHInstance::new(
            g,
            vec![BigUint::from(1_000_000u64), BigUint::from(100u64), BigUint::from(100u64)],
            s,
            BigUint::from(50u64), // hjmin(10^6) = 1000 > 50
        );
        let plan = optimize_greedy(&inst).expect("feasible with big relation first");
        assert_eq!(plan.sequence.at(0), 0);
    }
}
