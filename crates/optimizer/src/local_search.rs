//! Local-search heuristics for QO_N: hill climbing over the 2-swap
//! neighbourhood and simulated annealing.
//!
//! Both operate in log₂-cost space (the reduction instances span thousands
//! of orders of magnitude, so plain `f64` costs would overflow instantly).

use aqo_bignum::LogNum;
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};
use rand::Rng;

/// Log₂ of the total cost of `order` (helper shared by the heuristics).
fn cost_log2(inst: &QoNInstance, order: &[usize]) -> f64 {
    let z = JoinSequence::new(order.to_vec());
    let c: LogNum = inst.total_cost(&z);
    CostScalar::log2(&c)
}

/// Steepest-descent hill climbing over position swaps, restarted
/// `restarts` times from random permutations; returns the best sequence
/// found.
pub fn hill_climb(inst: &QoNInstance, restarts: usize, rng: &mut impl Rng) -> JoinSequence {
    use rand::seq::SliceRandom;
    let n = inst.n();
    let mut best_order: Vec<usize> = (0..n).collect();
    let mut best = cost_log2(inst, &best_order);
    for _ in 0..restarts.max(1) {
        let mut cur: Vec<usize> = (0..n).collect();
        cur.shuffle(rng);
        let mut cur_cost = cost_log2(inst, &cur);
        loop {
            let mut improved = false;
            for i in 0..n {
                for j in i + 1..n {
                    cur.swap(i, j);
                    let c = cost_log2(inst, &cur);
                    if c < cur_cost - 1e-12 {
                        cur_cost = c;
                        improved = true;
                    } else {
                        cur.swap(i, j);
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if cur_cost < best {
            best = cur_cost;
            best_order = cur;
        }
    }
    JoinSequence::new(best_order)
}

/// Parameters for [`simulated_annealing`].
#[derive(Clone, Debug)]
pub struct SaParams {
    /// Total proposal count.
    pub iterations: usize,
    /// Initial temperature, in log₂-cost units.
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration (`< 1`).
    pub cooling: f64,
}

impl Default for SaParams {
    fn default() -> Self {
        SaParams { iterations: 20_000, initial_temp: 16.0, cooling: 0.9995 }
    }
}

/// Simulated annealing with swap/relocate moves. Accepts a worse order with
/// probability `exp(−Δlog₂/T)`.
pub fn simulated_annealing(
    inst: &QoNInstance,
    params: &SaParams,
    rng: &mut impl Rng,
) -> JoinSequence {
    use rand::seq::SliceRandom;
    let n = inst.n();
    if n <= 2 {
        return JoinSequence::identity(n);
    }
    let mut cur: Vec<usize> = (0..n).collect();
    cur.shuffle(rng);
    let mut cur_cost = cost_log2(inst, &cur);
    let mut best = cur.clone();
    let mut best_cost = cur_cost;
    let mut temp = params.initial_temp;
    for _ in 0..params.iterations {
        let mut cand = cur.clone();
        if rng.gen_bool(0.5) {
            // Swap two positions.
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            cand.swap(i, j);
        } else {
            // Relocate one element.
            let i = rng.gen_range(0..n);
            let v = cand.remove(i);
            let j = rng.gen_range(0..n);
            cand.insert(j, v);
        }
        let c = cost_log2(inst, &cand);
        let delta = c - cur_cost;
        if delta <= 0.0 || rng.gen_bool((-delta / temp.max(1e-9)).exp().clamp(0.0, 1.0)) {
            cur = cand;
            cur_cost = c;
            if cur_cost < best_cost {
                best_cost = cur_cost;
                best = cur.clone();
            }
        }
        temp *= params.cooling;
    }
    JoinSequence::new(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> QoNInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(2 + 5 * i as u64)).collect();
        for v in 0..n {
            let u = (v + 1) % n;
            g.add_edge(u.min(v), u.max(v));
            let sel = BigRational::new(BigInt::one(), BigUint::from(4u64));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn hill_climb_reaches_optimum_on_small() {
        let inst = cycle(6);
        let mut rng = StdRng::seed_from_u64(42);
        let z = hill_climb(&inst, 4, &mut rng);
        let hc: BigRational = inst.total_cost(&z);
        let opt: crate::Optimum<BigRational> = exhaustive::optimize(&inst);
        // 2-swap descent with restarts on a 6-cycle should be exact; if a
        // future change weakens it, it must at least stay within 1 bit.
        assert!(CostScalar::log2(&hc) - CostScalar::log2(&opt.cost) < 1.0);
        assert!(hc >= opt.cost);
    }

    #[test]
    fn annealing_improves_over_random() {
        let inst = cycle(8);
        let mut rng = StdRng::seed_from_u64(7);
        let random = crate::greedy::random_sequence(8, &mut rng);
        let rc: BigRational = inst.total_cost(&random);
        let mut best_sa = f64::INFINITY;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sa = simulated_annealing(
                &inst,
                &SaParams { iterations: 4000, ..Default::default() },
                &mut rng,
            );
            let sc: BigRational = inst.total_cost(&sa);
            best_sa = best_sa.min(CostScalar::log2(&sc));
        }
        assert!(best_sa <= CostScalar::log2(&rc) + 1e-9);
    }

    #[test]
    fn tiny_instances_handled() {
        let inst = cycle(3);
        let mut rng = StdRng::seed_from_u64(1);
        let z = simulated_annealing(&inst, &SaParams::default(), &mut rng);
        assert_eq!(z.len(), 3);
        let z = hill_climb(&inst, 1, &mut rng);
        assert_eq!(z.len(), 3);
    }
}
