//! Exact and heuristic optimizers for the three cost models.
//!
//! The paper proves that no polynomial-time algorithm can approximate QO_N
//! or QO_H within `2^{log^{1−δ} K}` unless P = NP. This crate supplies both
//! sides of that statement in executable form:
//!
//! * **Exact optimizers** — ground truth on small instances and the
//!   machinery the experiments use to *verify* the reductions' cost claims:
//!   - [`exhaustive`] — all `n!` sequences (tiny `n`);
//!   - [`dp`] — Selinger-style dynamic programming over vertex subsets
//!     (left-deep plans), exact for the QO_N cost model since both `N(X)`
//!     and `min_k w_{jk}` depend on the prefix only through its *set*;
//!   - [`branch_bound`] — DFS with the admissible partial-cost bound,
//!     optionally parallel with a shared atomic incumbent bound;
//!   - [`engine`] — the layer-parallel, allocation-lean two-phase
//!     (log-domain then exact) subset DP engine over sparse per-layer
//!     frontiers;
//!   - [`ccp`] — DPccp: the engine's DP restricted to *connected
//!     subgraphs only*, exact for the cartesian-free sequence space and
//!     polynomially sized on the paper's §6 sparse families;
//!   - [`pipeline`] — QO_H: optimal pipeline decomposition of a given
//!     sequence by interval DP with per-fragment optimal memory allocation;
//!   - [`star`] — SQO−CP: subset DP over satellites, plus an exhaustive
//!     cross-check.
//! * **Polynomial-time algorithms** — the objects the theorems constrain:
//!   - [`ikkbz`] — the Ibaraki–Kameda/KBZ algorithm, provably optimal for
//!     *acyclic* query graphs (the contrast drawn in §6.3);
//!   - [`greedy`] — classical greedy heuristics;
//!   - [`local_search`] — simulated annealing and hill climbing;
//!   - [`genetic`] — an order-crossover genetic algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod ccp;
pub mod dp;
pub mod engine;
pub mod exhaustive;
pub mod genetic;
pub mod greedy;
pub mod ikkbz;
pub mod local_search;
pub mod pipeline;
pub mod star;

use aqo_core::{CostScalar, JoinSequence};

/// Outcome of a QO_N optimization: the best sequence found and its cost.
#[derive(Clone, Debug)]
pub struct Optimum<S> {
    /// The best join sequence found.
    pub sequence: JoinSequence,
    /// Its cost under the caller's scalar backend.
    pub cost: S,
}

impl<S: CostScalar> Optimum<S> {
    /// Re-costs the winning sequence under another backend (typically: the
    /// search ran in log domain, the report needs exact arithmetic).
    pub fn recost<T: CostScalar>(&self, inst: &aqo_core::qon::QoNInstance) -> Optimum<T> {
        Optimum { sequence: self.sequence.clone(), cost: inst.total_cost(&self.sequence) }
    }
}
