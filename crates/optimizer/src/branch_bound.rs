//! Exact QO_N optimization by depth-first branch-and-bound.
//!
//! Costs are sums of non-negative join costs, so the accumulated prefix cost
//! is an admissible lower bound on any completion; the search prunes a
//! prefix as soon as it meets the incumbent. A greedy warm start makes the
//! incumbent strong from the first node. On the paper's reduction instances,
//! where costs explode by `α` factors per misstep, pruning is ferocious.

use crate::{greedy, Optimum};
use aqo_bignum::BigUint;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::parallel::{resolve_threads, run_workers, SharedBound};
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};
use aqo_graph::BitSet;

/// Slack, in bits, added to the shared log₂ incumbent before pruning on it.
/// The shared bound is the `f64` log₂ of some worker's *exact* incumbent;
/// pruning only when the prefix exceeds it by more than this margin makes
/// float rounding harmless: a pruned prefix is certainly no better than an
/// incumbent some worker already holds exactly.
const SHARED_BOUND_MARGIN_BITS: f64 = 1e-3;

/// Per-search tallies, accumulated in plain locals on each worker (zero
/// atomic traffic in the DFS) and flushed to the metrics registry once.
/// Node and prune counts depend on incumbent timing, so under parallel
/// search they are *not* deterministic across thread counts — unlike the
/// engine's layer counters (see docs/OBSERVABILITY.md).
#[derive(Clone, Copy, Debug, Default)]
struct SearchStats {
    nodes: u64,
    incumbent_improvements: u64,
    bound_prunes: u64,
    shared_prunes: u64,
}

impl SearchStats {
    fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.incumbent_improvements += other.incumbent_improvements;
        self.bound_prunes += other.bound_prunes;
        self.shared_prunes += other.shared_prunes;
    }

    fn flush(&self, mode: &'static str, workers: usize) {
        if !aqo_obs::enabled() {
            return;
        }
        aqo_obs::counter_handle!("optimizer.bnb.nodes").add(self.nodes);
        aqo_obs::counter_handle!("optimizer.bnb.incumbent_improvements")
            .add(self.incumbent_improvements);
        aqo_obs::counter_handle!("optimizer.bnb.bound_prunes").add(self.bound_prunes);
        aqo_obs::counter_handle!("optimizer.bnb.shared_prunes").add(self.shared_prunes);
        aqo_obs::journal::event(
            "bnb_done",
            vec![
                ("mode", mode.into()),
                ("workers", workers.into()),
                ("nodes", self.nodes.into()),
                ("incumbent_improvements", self.incumbent_improvements.into()),
                ("bound_prunes", self.bound_prunes.into()),
                ("shared_prunes", self.shared_prunes.into()),
            ],
        );
    }
}

/// Exact optimum by branch-and-bound. `allow_cartesian = false` searches
/// only cartesian-product-free sequences (returns `None` when none exists).
pub fn optimize<S: CostScalar>(inst: &QoNInstance, allow_cartesian: bool) -> Option<Optimum<S>> {
    optimize_with_budget(inst, allow_cartesian, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// A worker's best-so-far: the exact cost plus its cached `log2`, so the
/// shared-bound check never recomputes the expensive exact→float bridge
/// on the DFS hot path (only on the rare incumbent improvement).
struct Incumbent<S> {
    order: Vec<usize>,
    cost: S,
    log2: f64,
}

impl<S: CostScalar> Incumbent<S> {
    fn from_warm(inst: &QoNInstance, z: JoinSequence) -> Incumbent<S> {
        let cost: S = inst.total_cost(&z);
        let log2 = cost.log2();
        Incumbent { order: z.order().to_vec(), cost, log2 }
    }
}

/// As [`optimize`], under a cooperative [`Budget`] ticked once per DFS
/// node. The search unwinds promptly when the budget trips; the incumbent
/// found so far is discarded (the driver layer decides what to fall back
/// to).
pub fn optimize_with_budget<S: CostScalar>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("bnb.optimize");
    let n = inst.n();
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: S::zero() }));
    }
    budget.checkpoint()?;
    let mut best = greedy::min_intermediate(inst, allow_cartesian)
        .map(|z| Incumbent::from_warm(inst, z));
    let mut stats = SearchStats::default();
    search_all_roots(inst, allow_cartesian, &mut best, budget, None, &mut stats)?;
    stats.flush("seq", 1);
    Ok(best.map(|b| Optimum { sequence: JoinSequence::new(b.order), cost: b.cost }))
}

/// The sequential search body: every root vertex in order, one DFS each.
fn search_all_roots<S: CostScalar>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    best: &mut Option<Incumbent<S>>,
    budget: &Budget,
    shared: Option<&SharedBound>,
    stats: &mut SearchStats,
) -> Result<(), BudgetExceeded> {
    let n = inst.n();
    let mut prefix = Vec::with_capacity(n);
    let mut in_prefix = BitSet::new(n);
    for start in 0..n {
        prefix.push(start);
        in_prefix.insert(start);
        let outcome = dfs(
            inst,
            allow_cartesian,
            &mut prefix,
            &mut in_prefix,
            S::from_count(&inst.sizes()[start]),
            S::zero(),
            best,
            budget,
            shared,
            stats,
        );
        in_prefix.remove(start);
        prefix.pop();
        outcome?;
    }
    Ok(())
}

/// Parallel branch-and-bound: the *ordered pairs* of root vertices —
/// `n(n−1)` depth-2 subtrees instead of `n` depth-1 ones — are strided
/// across a scoped worker pool, and workers share the incumbent upper
/// bound through a lock-free atomic ([`SharedBound`], log₂ domain), so a
/// strong incumbent found by one worker immediately sharpens pruning in
/// all the others. The finer split matters on real graphs: depth-1
/// subtree sizes vary by orders of magnitude (a hub root dominates), and
/// with only `n` units a stride of `threads` routinely leaves workers
/// idle while one drains the big subtree.
///
/// Each worker keeps its *exact* local incumbent; the shared float bound
/// only decides what gets pruned (with [`SHARED_BOUND_MARGIN_BITS`] of
/// slack), never what is returned — so the returned cost equals the
/// sequential optimum for every thread count. `threads = 0` means one
/// worker per hardware thread; when that resolves to a single worker
/// (e.g. a 1-core host) the search delegates to the sequential DFS
/// outright, skipping the shared-bound machinery it would pay for and
/// never benefit from (the `mode=par` rows in BENCH_optimizer.json on a
/// 1-thread host measure exactly this delegation).
pub fn optimize_par<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    threads: usize,
) -> Option<Optimum<S>> {
    optimize_par_with_budget(inst, allow_cartesian, threads, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize_par`], under a cooperative [`Budget`] shared by all
/// workers (its interior is atomic). When the budget trips, every worker
/// unwinds at its next tick and the scoped pool joins them all before the
/// error is returned — no threads outlive the call.
pub fn optimize_par_with_budget<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let n = inst.n();
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: S::zero() }));
    }
    let threads = resolve_threads(threads).min(n);
    // Per-worker scratch: prefix stack, membership bitset, incumbent order.
    let scratch_per_worker = 2 * n * std::mem::size_of::<usize>() + n.div_ceil(8) + 64;
    budget.charge_memory((threads * scratch_per_worker) as u64)?;
    budget.checkpoint()?;

    if threads == 1 {
        // One worker gains nothing from the shared bound but would pay
        // its per-node check; run the plain sequential DFS instead.
        let mut best = greedy::min_intermediate(inst, allow_cartesian)
            .map(|z| Incumbent::from_warm(inst, z));
        let mut stats = SearchStats::default();
        search_all_roots(inst, allow_cartesian, &mut best, budget, None, &mut stats)?;
        stats.flush("par", 1);
        return Ok(best.map(|b| Optimum { sequence: JoinSequence::new(b.order), cost: b.cost }));
    }

    let warm = greedy::min_intermediate(inst, allow_cartesian)
        .map(|z| Incumbent::<S>::from_warm(inst, z));
    let shared = SharedBound::unbounded();
    if let Some(b) = &warm {
        shared.tighten(b.log2);
    }

    // Depth-2 seeds: every ordered root pair whose second join is legal.
    // Deterministic order, so the stride assignment is reproducible.
    let mut seeds: Vec<(usize, usize)> = Vec::with_capacity(n * (n - 1));
    for a in 0..n {
        for b in 0..n {
            if a != b && (allow_cartesian || inst.graph().has_edge(a, b)) {
                seeds.push((a, b));
            }
        }
    }
    if seeds.is_empty() {
        // No legal second join anywhere (edgeless graph, cartesian-free):
        // only the warm start (which is `None` then) could answer.
        return Ok(warm.map(|b| Optimum { sequence: JoinSequence::new(b.order), cost: b.cost }));
    }
    let threads = threads.min(seeds.len());

    type WorkerOut<S> = (Option<Incumbent<S>>, SearchStats);
    let seeds = &seeds;
    let outcomes = run_workers(threads, |t| -> Result<WorkerOut<S>, BudgetExceeded> {
        let mut best = warm.as_ref().map(|b| Incumbent {
            order: b.order.clone(),
            cost: b.cost.clone(),
            log2: b.log2,
        });
        let mut stats = SearchStats::default();
        let mut prefix = Vec::with_capacity(n);
        let mut in_prefix = BitSet::new(n);
        let mut i = t;
        while i < seeds.len() {
            let (a, b) = seeds[i];
            i += threads;
            // The depth-1 node (root `a`) is re-entered once per seed
            // sharing that root; tick it so expansion accounting stays
            // proportional to work actually done.
            budget.tick()?;
            stats.nodes += 1;
            prefix.push(a);
            in_prefix.insert(a);
            let n_a = S::from_count(&inst.sizes()[a]);
            let outcome = match step(inst, allow_cartesian, &in_prefix, 1, &n_a, b) {
                None => Ok(()),
                Some((n_ab, delta)) => {
                    prefix.push(b);
                    in_prefix.insert(b);
                    let r = dfs(
                        inst,
                        allow_cartesian,
                        &mut prefix,
                        &mut in_prefix,
                        n_ab,
                        delta,
                        &mut best,
                        budget,
                        Some(&shared),
                        &mut stats,
                    );
                    in_prefix.remove(b);
                    prefix.pop();
                    r
                }
            };
            in_prefix.remove(a);
            prefix.pop();
            outcome?;
        }
        Ok((best, stats))
    });

    let mut best: Option<Incumbent<S>> = None;
    let mut stats = SearchStats::default();
    for outcome in outcomes {
        let (worker_best, worker_stats) = outcome?;
        stats.merge(&worker_stats);
        if let Some(wb) = worker_best {
            if best.as_ref().is_none_or(|b| wb.cost < b.cost) {
                best = Some(wb);
            }
        }
    }
    stats.flush("par", threads);
    Ok(best.map(|b| Optimum { sequence: JoinSequence::new(b.order), cost: b.cost }))
}

/// One DFS transition: the cost delta and new intermediate size of
/// joining `j` into the current prefix, or `None` when that join would be
/// a cartesian product and those are not admissible. Shared between the
/// inner DFS loop and the parallel depth-2 seeding so the two can never
/// drift apart on the cost model.
fn step<S: CostScalar>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    in_prefix: &BitSet,
    prefix_len: usize,
    n_x: &S,
    j: usize,
) -> Option<(S, S)> {
    let mut w_min: Option<BigUint> = None;
    let mut nbr_count = 0usize;
    let mut new_n = n_x.mul(&S::from_count(&inst.sizes()[j]));
    for k in inst.graph().neighbors(j).iter() {
        if in_prefix.contains(k) {
            nbr_count += 1;
            let w = inst.w(j, k);
            w_min = Some(match w_min {
                None => w,
                Some(cur) => cur.min(w),
            });
            new_n = new_n.mul(&S::from_ratio(&inst.selectivity().get(j, k)));
        }
    }
    if nbr_count == 0 && !allow_cartesian {
        return None;
    }
    if nbr_count < prefix_len {
        let tj = inst.sizes()[j].clone();
        w_min = Some(match w_min {
            None => tj,
            Some(cur) => cur.min(tj),
        });
    }
    // analyze:allow(no-unwrap-in-lib) -- a nonempty prefix always yields a
    // w_min: either a neighbour contributed or the default branch fired.
    let delta = n_x.mul(&S::from_count(&w_min.expect("prefix nonempty")));
    Some((new_n, delta))
}

#[allow(clippy::too_many_arguments)]
fn dfs<S: CostScalar>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    prefix: &mut Vec<usize>,
    in_prefix: &mut BitSet,
    n_x: S,
    cost: S,
    best: &mut Option<Incumbent<S>>,
    budget: &Budget,
    shared: Option<&SharedBound>,
    stats: &mut SearchStats,
) -> Result<(), BudgetExceeded> {
    let n = inst.n();
    budget.tick()?;
    stats.nodes += 1;
    if let Some(b) = best {
        if cost >= b.cost {
            stats.bound_prunes += 1;
            return Ok(());
        }
    }
    if let Some(sb) = shared {
        // Another worker's exact incumbent, as a float bound with slack.
        // `cost.log2()` is an exact→float bridge (a BigRational bit scan),
        // far too expensive per node; only pay for it when the shared
        // bound is strictly tighter than our cached local incumbent —
        // i.e. when it could prune something the local check above
        // didn't. Soundness is unchanged: skipping the check never
        // prunes, and the local exact compare already ran.
        let sbv = sb.get();
        let local = best.as_ref().map_or(f64::INFINITY, |b| b.log2);
        if sbv + SHARED_BOUND_MARGIN_BITS < local
            && cost.log2() > sbv + SHARED_BOUND_MARGIN_BITS
        {
            stats.shared_prunes += 1;
            return Ok(());
        }
    }
    if prefix.len() == n {
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            let log2 = cost.log2();
            if let Some(sb) = shared {
                sb.tighten(log2);
            }
            stats.incumbent_improvements += 1;
            *best = Some(Incumbent { order: prefix.clone(), cost, log2 });
        }
        return Ok(());
    }
    for j in 0..n {
        if in_prefix.contains(j) {
            continue;
        }
        let Some((new_n, delta)) = step(inst, allow_cartesian, in_prefix, prefix.len(), &n_x, j)
        else {
            continue;
        };
        let new_cost = cost.add(&delta);
        prefix.push(j);
        in_prefix.insert(j);
        let outcome = dfs(
            inst,
            allow_cartesian,
            prefix,
            in_prefix,
            new_n,
            new_cost,
            best,
            budget,
            shared,
            stats,
        );
        in_prefix.remove(j);
        prefix.pop();
        outcome?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dp, exhaustive};
    use aqo_bignum::{BigInt, BigRational};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn cycle(n: usize) -> QoNInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(3 + i as u64)).collect();
        for v in 0..n {
            let u = (v + 1) % n;
            g.add_edge(u.min(v), u.max(v));
            let sel = BigRational::new(BigInt::one(), BigUint::from(3u64));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn bnb_matches_exhaustive() {
        let inst = cycle(6);
        let bb = optimize::<BigRational>(&inst, true).unwrap();
        let ex: Optimum<BigRational> = exhaustive::optimize(&inst);
        assert_eq!(bb.cost, ex.cost);
        let recost: BigRational = inst.total_cost(&bb.sequence);
        assert_eq!(recost, bb.cost);
    }

    #[test]
    fn bnb_matches_dp_no_cartesian() {
        let inst = cycle(7);
        let bb = optimize::<BigRational>(&inst, false).unwrap();
        let d = dp::optimize::<BigRational>(&inst, false).unwrap();
        assert_eq!(bb.cost, d.cost);
        assert!(!inst.has_cartesian_product(&bb.sequence));
    }

    #[test]
    fn budget_trips_and_generous_budget_agrees() {
        let inst = cycle(7);
        let tiny = Budget::unlimited().with_max_expansions(2);
        let err = optimize_with_budget::<BigRational>(&inst, true, &tiny).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);

        let roomy = Budget::unlimited().with_max_expansions(10_000_000);
        let bb = optimize_with_budget::<BigRational>(&inst, true, &roomy).unwrap().unwrap();
        let free = optimize::<BigRational>(&inst, true).unwrap();
        assert_eq!(bb.cost, free.cost);
    }

    #[test]
    fn parallel_matches_sequential_for_every_thread_count() {
        let inst = cycle(7);
        for allow in [true, false] {
            let seq = optimize::<BigRational>(&inst, allow).unwrap();
            for threads in [1usize, 2, 3, 8] {
                let par = optimize_par::<BigRational>(&inst, allow, threads).unwrap();
                assert_eq!(par.cost, seq.cost, "threads {threads}");
                let recost: BigRational = inst.total_cost(&par.sequence);
                assert_eq!(recost, par.cost);
                if !allow {
                    assert!(!inst.has_cartesian_product(&par.sequence));
                }
            }
        }
    }

    #[test]
    fn parallel_budget_trips_and_charges_worker_scratch() {
        let inst = cycle(7);
        let tiny = Budget::unlimited().with_max_expansions(5);
        let err =
            optimize_par_with_budget::<BigRational>(&inst, true, 4, &tiny).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);

        // Scratch scales with the worker count, so a cap that admits one
        // worker can reject eight.
        let one = Budget::unlimited().with_max_memory_bytes(200);
        assert!(optimize_par_with_budget::<BigRational>(&inst, true, 1, &one).is_ok());
        let eight = Budget::unlimited().with_max_memory_bytes(200);
        let err =
            optimize_par_with_budget::<BigRational>(&inst, true, 7, &eight).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Memory);
    }

    #[test]
    fn disconnected_no_cartesian_none() {
        let inst = QoNInstance::new(
            Graph::new(3),
            vec![BigUint::from(2u64); 3],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        assert!(optimize::<BigRational>(&inst, false).is_none());
        assert!(optimize::<BigRational>(&inst, true).is_some());
    }
}
