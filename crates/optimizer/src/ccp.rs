//! DPccp: exact join ordering by connected-subgraph enumeration.
//!
//! Moerkotte & Neumann's DPccp observation, specialized to QO_N's
//! left-deep sequences: under the no-cartesian-product rule a join
//! sequence is feasible exactly when every prefix induces a *connected*
//! subgraph of the query graph, so the subset DP of [`crate::dp`] /
//! [`crate::engine`] only ever needs DP states for connected subgraphs.
//! This tier enumerates them directly — breadth-first `csg` expansion of
//! each frontier set `S` by its neighborhood `N(S)∖S` over the per-vertex
//! neighbour bitmasks (the csg/cmp recurrence; for left-deep plans the
//! complement part of each pair is the single joined-in vertex, so the
//! `cmp` side degenerates into the neighbour scan of the DP transition) —
//! and runs the engine's layer-parallel two-phase DP over just those
//! states. A chain has `n(n+1)/2` connected subsets and a cycle
//! `n(n−1)+1`, versus `2^n − 1` subsets overall: on the paper's §6 sparse
//! families the state space collapses from exponential to quadratic, which
//! is what pushes exact optimization past n=25 (see BENCH_optimizer.json
//! `algo=ccp` rows).
//!
//! **Cartesian-free only.** With cartesian products admissible, an
//! optimal sequence may pass through *disconnected* prefixes even on a
//! connected graph (a star whose hub dwarfs its satellites: joining two
//! cheap satellites first — a cartesian product — can undercut every
//! connected order). Restricting to connected states would silently
//! return a non-optimal "exact" answer, so this module simply does not
//! accept an `allow_cartesian` flag; callers that need cartesian products
//! use [`crate::engine`] (the driver reports `ccp` as unsupported for
//! such configs rather than falling through to it).
//!
//! Shares the sparse-frontier machinery of [`crate::engine`]
//! ([`crate::engine::FrontierMode::Connected`]), reporting under the
//! `optimizer.ccp.*` counters; `optimizer.ccp.subsets_expanded` counts
//! every connected subgraph the enumeration touches (singletons included),
//! so it equals [`connected_subset_count`] exactly — property-tested
//! against a brute-force connectivity scan in `tests/prop_ccp.rs`.

use crate::engine::{nbr_masks, two_phase_impl, FrontierMode, Frontiers, Tier};
use crate::Optimum;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::qon::QoNInstance;
use aqo_core::CostScalar;

/// Hard cap on `n`: subset masks are `u32`. Unlike the all-subsets
/// engine, nothing here is sized `2^n`, so the full mask width is usable
/// — a 32-chain has 528 connected subsets. Larger instances need wider
/// masks and a structured rejection upstream (driver/CLI), not silent
/// wraparound.
pub const MAX_N: usize = 32;

/// Exact QO_N optimization over the cartesian-free sequence space by
/// connected-subgraph DP: log-domain phase A for a candidate plan and
/// pruning estimates, exact phase B in the caller's scalar `S`. Returns
/// `None` when the query graph is disconnected (no cartesian-free
/// sequence exists). Cost is identical to
/// `dp::optimize::<S>(inst, false)` for every thread count.
pub fn optimize_two_phase<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    threads: usize,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "ccp is for n in 1..={MAX_N}");
    two_phase_impl(inst, FrontierMode::Connected, false, threads, budget, Tier::Ccp)
}

/// Number of connected subgraphs of the instance's query graph
/// (singletons included) — the exact DP state count of this tier, and
/// the value `optimizer.ccp.subsets_expanded` reports after a run.
pub fn connected_subset_count(inst: &QoNInstance) -> u64 {
    let nbr = nbr_masks(inst);
    // analyze:allow(no-unwrap-in-lib) -- an unlimited budget never trips,
    // so the build's only error path is unreachable here.
    Frontiers::build(inst.n(), &nbr, FrontierMode::Connected, &Budget::unlimited())
        .expect("unlimited budget")
        .total_subsets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn instance_from_graph(g: Graph, seed: u64) -> QoNInstance {
        let n = g.n();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 40)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 9));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(v - 1, v);
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = chain(n);
        g.add_edge(n - 1, 0);
        g
    }

    #[test]
    fn connected_counts_on_closed_forms() {
        // Chain: intervals only, n(n+1)/2. Cycle: n(n−1)+1. Clique: 2^n−1.
        for n in [2usize, 5, 9, 14] {
            let inst = instance_from_graph(chain(n), 1);
            assert_eq!(connected_subset_count(&inst), (n * (n + 1) / 2) as u64);
        }
        for n in [3usize, 5, 9, 14] {
            let inst = instance_from_graph(cycle(n), 1);
            assert_eq!(connected_subset_count(&inst), (n * (n - 1) + 1) as u64);
        }
        let mut k = Graph::new(5);
        for u in 0..5 {
            for v in u + 1..5 {
                k.add_edge(u, v);
            }
        }
        assert_eq!(connected_subset_count(&instance_from_graph(k, 1)), 31);
    }

    #[test]
    fn matches_sequential_dp_on_chain_cycle_random() {
        let mut graphs = vec![chain(7), cycle(7)];
        for seed in 0..4u64 {
            let mut state = seed * 9973 + 1;
            let mut next = move || {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            let mut g = chain(7);
            for _ in 0..3 {
                let u = (next() % 7) as usize;
                let v = (next() % 7) as usize;
                if u != v {
                    g.add_edge(u, v);
                }
            }
            graphs.push(g);
        }
        for (gi, g) in graphs.into_iter().enumerate() {
            let inst = instance_from_graph(g, gi as u64 + 3);
            let oracle = dp::optimize::<BigRational>(&inst, false);
            for threads in [1usize, 2, 4] {
                let got =
                    optimize_two_phase::<BigRational>(&inst, threads, &Budget::unlimited())
                        .unwrap();
                match (&oracle, &got) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.cost, b.cost, "graph {gi} threads {threads}");
                        assert!(!inst.has_cartesian_product(&b.sequence));
                        let recost: BigRational = inst.total_cost(&b.sequence);
                        assert_eq!(recost, b.cost);
                    }
                    (None, None) => {}
                    other => panic!("feasibility mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_is_infeasible() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(4, 5);
        let inst = instance_from_graph(g, 11);
        assert!(optimize_two_phase::<BigRational>(&inst, 2, &Budget::unlimited())
            .unwrap()
            .is_none());
        assert_eq!(connected_subset_count(&inst), 9); // 6 singletons + 3 edges
    }

    #[test]
    fn single_vertex_and_lognum_backend() {
        let inst = instance_from_graph(Graph::new(1), 5);
        let opt = optimize_two_phase::<BigRational>(&inst, 1, &Budget::unlimited())
            .unwrap()
            .unwrap();
        assert!(opt.cost.is_zero());
        let inst = instance_from_graph(chain(10), 7);
        let log = optimize_two_phase::<LogNum>(&inst, 2, &Budget::unlimited())
            .unwrap()
            .unwrap();
        let seq = dp::optimize::<LogNum>(&inst, false).unwrap();
        assert!((log.cost.log2() - seq.cost.log2()).abs() < 1e-9);
    }

    #[test]
    fn expansion_cap_trips() {
        let inst = instance_from_graph(chain(16), 13);
        let budget = Budget::unlimited().with_max_expansions(50);
        let err = optimize_two_phase::<BigRational>(&inst, 2, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
    }

    #[test]
    fn large_chain_stays_cheap() {
        // n=30 would be hopeless for the 2^n engine; the connected
        // frontier holds only 465 states.
        let inst = instance_from_graph(chain(30), 17);
        let budget = Budget::unlimited();
        let opt = optimize_two_phase::<BigRational>(&inst, 1, &budget).unwrap().unwrap();
        let recost: BigRational = inst.total_cost(&opt.sequence);
        assert_eq!(recost, opt.cost);
        assert_eq!(connected_subset_count(&inst), 465);
        // Frontier-sized tables: far below even one dense layer of 2^30.
        assert!(budget.memory_charged() < 1 << 20, "{}", budget.memory_charged());
    }
}
