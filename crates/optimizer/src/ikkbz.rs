//! The Ibaraki–Kameda / Krishnamurthy–Boral–Zaniolo (IKKBZ) algorithm:
//! polynomial-time *optimal* join ordering for acyclic query graphs.
//!
//! The paper's §6.3 contrasts its hardness results with [1] (Ibaraki–Kameda)
//! and [6] (KBZ), which optimize tree queries in polynomial time: hardness
//! needs `e(m) ≥ m + Θ(m^τ)` edges, while trees have `m − 1`. This module
//! implements that easy side.
//!
//! For a tree query rooted at `r`, every cartesian-product-free sequence is
//! a topological order; joining node `j` (parent `p(j)` already present)
//! costs `N(X)·w_{j,p(j)}` and multiplies the running intermediate by
//! `f_j = t_j·s_{j,p(j)}`. This cost function has the *adjacent sequence
//! interchange* (ASI) property with rank `rank(M) = (T(M) − 1)/C(M)` where,
//! for a module (subsequence) `M`, `C(AB) = C(A) + T(A)·C(B)` and
//! `T(AB) = T(A)·T(B)`. IKKBZ linearizes the precedence tree bottom-up,
//! merging child chains by rank and contracting rank violations into
//! compound modules; trying each root gives the global optimum in
//! `O(n² log n)`.

use crate::Optimum;
use aqo_bignum::BigRational;
use aqo_core::qon::QoNInstance;
use aqo_core::JoinSequence;
use std::collections::VecDeque;

/// A (possibly compound) module of the precedence chain.
#[derive(Clone, Debug)]
struct Module {
    nodes: Vec<usize>,
    /// Relative cost `C(M)` (to be scaled by `t_root`).
    c: BigRational,
    /// Size factor `T(M)`.
    t: BigRational,
}

impl Module {
    fn single(node: usize, c: BigRational, t: BigRational) -> Self {
        Module { nodes: vec![node], c, t }
    }

    /// `rank(A) ≤ rank(B)` via cross-multiplication (`C > 0` always).
    fn rank_le(&self, other: &Module) -> bool {
        let lhs = (&self.t - &BigRational::one()) * &other.c;
        let rhs = (&other.t - &BigRational::one()) * &self.c;
        lhs <= rhs
    }

    fn merge(self, other: Module) -> Module {
        let c = &self.c + &(&self.t * &other.c);
        let t = &self.t * &other.t;
        let mut nodes = self.nodes;
        nodes.extend(other.nodes);
        Module { nodes, c, t }
    }
}

/// Runs IKKBZ for every root and returns the best sequence with its exact
/// cost. Panics unless the query graph is a connected tree.
// analyze:allow(budget-hook-coverage) -- IKKBZ is O(n^2 log n) per root
// (polynomial, no search-space explosion); a cancel hook would cost more
// than the longest possible run.
pub fn optimize(inst: &QoNInstance) -> Optimum<BigRational> {
    let n = inst.n();
    assert!(n >= 1, "empty instance");
    assert!(inst.graph().is_connected(), "IKKBZ requires a connected query graph");
    assert_eq!(inst.graph().m(), n - 1, "IKKBZ requires an acyclic (tree) query graph");
    let mut best: Option<Optimum<BigRational>> = None;
    for root in 0..n {
        let z = linearize(inst, root);
        let cost: BigRational = inst.total_cost(&z);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Optimum { sequence: z, cost });
        }
    }
    best.expect("n >= 1")
}

/// Optimal sequence among those starting at `root`.
pub fn linearize(inst: &QoNInstance, root: usize) -> JoinSequence {
    let n = inst.n();
    if n == 1 {
        return JoinSequence::identity(1);
    }
    // Build the rooted tree.
    let mut parent = vec![usize::MAX; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut stack = vec![root];
    let mut seen = vec![false; n];
    seen[root] = true;
    while let Some(u) = stack.pop() {
        for v in inst.graph().neighbors(u).iter() {
            if !seen[v] {
                seen[v] = true;
                parent[v] = u;
                children[u].push(v);
                stack.push(v);
            }
        }
    }
    let chain = linearize_subtrees(inst, root, &parent, &children);
    let mut order = Vec::with_capacity(n);
    order.push(root);
    for m in chain {
        order.extend(m.nodes);
    }
    JoinSequence::new(order)
}

/// Linearizes the children subtrees of `v` into one rank-ascending chain.
fn linearize_subtrees(
    inst: &QoNInstance,
    v: usize,
    parent: &[usize],
    children: &[Vec<usize>],
) -> VecDeque<Module> {
    let mut chains: Vec<VecDeque<Module>> = Vec::with_capacity(children[v].len());
    for &c in &children[v] {
        let mut chain = linearize_subtrees(inst, c, parent, children);
        // Prepend c's own module and normalize rank violations.
        let w = BigRational::from(inst.w(c, parent[c]));
        let f = BigRational::from(inst.sizes()[c].clone())
            * inst.selectivity().get(c, parent[c]);
        let mut head = Module::single(c, w, f);
        while let Some(first) = chain.front() {
            if head.rank_le(first) {
                break;
            }
            let first = chain.pop_front().expect("front exists");
            head = head.merge(first);
        }
        chain.push_front(head);
        chains.push(chain);
    }
    // Merge the (rank-ascending) child chains by rank.
    let mut merged: VecDeque<Module> = VecDeque::new();
    for chain in chains {
        merged = merge_by_rank(merged, chain);
    }
    merged
}

fn merge_by_rank(mut a: VecDeque<Module>, mut b: VecDeque<Module>) -> VecDeque<Module> {
    let mut out = VecDeque::with_capacity(a.len() + b.len());
    loop {
        match (a.front(), b.front()) {
            (None, _) => {
                out.extend(b);
                return out;
            }
            (_, None) => {
                out.extend(a);
                return out;
            }
            (Some(x), Some(y)) => {
                if x.rank_le(y) {
                    out.push_back(a.pop_front().expect("front"));
                } else {
                    out.push_back(b.pop_front().expect("front"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use aqo_bignum::{BigInt, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::{generators, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tree_instance(g: Graph, rng: &mut StdRng) -> QoNInstance {
        let n = g.n();
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(2u64..50))).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..12)));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn matches_dp_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..12 {
            let n = rng.gen_range(2usize..9);
            let g = generators::random_tree(n, &mut rng);
            let inst = tree_instance(g, &mut rng);
            let ik = optimize(&inst);
            let exact = dp::optimize::<BigRational>(&inst, false).unwrap();
            assert_eq!(ik.cost, exact.cost, "trial {trial}, n={n}");
            assert!(!inst.has_cartesian_product(&ik.sequence));
        }
    }

    #[test]
    fn chain_query_deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let inst = tree_instance(g, &mut rng);
        let ik = optimize(&inst);
        let exact = dp::optimize::<BigRational>(&inst, false).unwrap();
        assert_eq!(ik.cost, exact.cost);
    }

    #[test]
    fn star_query() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut g = Graph::new(6);
        for v in 1..6 {
            g.add_edge(0, v);
        }
        let inst = tree_instance(g, &mut rng);
        let ik = optimize(&inst);
        let exact = dp::optimize::<BigRational>(&inst, false).unwrap();
        assert_eq!(ik.cost, exact.cost);
    }

    #[test]
    fn single_and_pair() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst1 = tree_instance(Graph::new(1), &mut rng);
        assert!(optimize(&inst1).cost.is_zero());
        let inst2 = tree_instance(Graph::from_edges(2, &[(0, 1)]), &mut rng);
        let ik = optimize(&inst2);
        let exact = dp::optimize::<BigRational>(&inst2, false).unwrap();
        assert_eq!(ik.cost, exact.cost);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_graph_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = tree_instance(g, &mut rng);
        let _ = optimize(&inst);
    }
}
