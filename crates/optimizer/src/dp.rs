//! Selinger-style dynamic programming over vertex subsets for QO_N.
//!
//! The QO_N cost model is *prefix-set determined*: both the intermediate
//! size `N(X)` and the access cost `min_{v_k ∈ X} w_{jk}` depend on the
//! prefix `X` only through its set of vertices, never their order. Hence the
//! optimal left-deep sequence satisfies Bellman's principle over subsets and
//! the DP below is exact:
//!
//! ```text
//! dp[{v}]      = 0
//! dp[S ∪ {j}]  = min_{j ∉ S} dp[S] + N(S)·min_{k ∈ S} w_{jk}
//! ```

use crate::Optimum;
use aqo_bignum::BigUint;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};

/// Hard cap on `n` (a `2^n` table is allocated).
pub const MAX_N: usize = 25;

/// Exact optimum by subset DP.
///
/// With `allow_cartesian = false`, only sequences whose every join has a
/// query-graph edge into the prefix are considered; returns `None` when no
/// such sequence exists (disconnected query graph).
pub fn optimize<S: CostScalar>(inst: &QoNInstance, allow_cartesian: bool) -> Option<Optimum<S>> {
    optimize_with_budget(inst, allow_cartesian, &Budget::unlimited())
        .expect("unlimited budget cannot be exceeded")
}

/// As [`optimize`], under a cooperative [`Budget`]: the transition loop
/// ticks the budget and the `3·2^n`-entry tables are charged against the
/// memory cap before allocation, so oversized instances fail fast instead
/// of hanging or OOMing.
pub fn optimize_with_budget<S: CostScalar>(
    inst: &QoNInstance,
    allow_cartesian: bool,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("dp.optimize");
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "subset DP is for n in 1..={MAX_N}");
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: S::zero() }));
    }
    let full: usize = (1usize << n) - 1;
    let table_bytes =
        (full + 1) * (2 * std::mem::size_of::<Option<S>>() + std::mem::size_of::<u8>());
    budget.charge_memory(table_bytes as u64)?;
    budget.checkpoint()?;
    // dp cost, intermediate size N(S), and the last vertex added.
    let mut dp: Vec<Option<S>> = vec![None; full + 1];
    let mut nsize: Vec<Option<S>> = vec![None; full + 1];
    let mut parent: Vec<u8> = vec![u8::MAX; full + 1];
    for v in 0..n {
        let m = 1usize << v;
        dp[m] = Some(S::zero());
        nsize[m] = Some(S::from_count(&inst.sizes()[v]));
    }
    // Plain locals in the hot loop, flushed to the metrics registry once
    // at the end — counting costs nothing per transition.
    let mut subsets_expanded = 0u64;
    let mut transitions = 0u64;
    for mask in 1..=full {
        // Every successor mask | 1 << j is strictly greater than mask, so
        // splitting the tables at mask + 1 lets us read the source state by
        // reference while mutating successors — no per-state clones.
        let (dp_lo, dp_hi) = dp.split_at_mut(mask + 1);
        let (ns_lo, ns_hi) = nsize.split_at_mut(mask + 1);
        let Some(cost_s) = dp_lo[mask].as_ref() else { continue };
        let n_s = ns_lo[mask].as_ref().expect("N(S) set with dp");
        subsets_expanded += 1;
        for j in 0..n {
            if mask >> j & 1 == 1 {
                continue;
            }
            budget.tick()?;
            transitions += 1;
            // Neighbours of j inside S.
            let mut w_min: Option<BigUint> = None;
            let mut nbr_count = 0usize;
            let mut new_n = n_s.mul(&S::from_count(&inst.sizes()[j]));
            for k in inst.graph().neighbors(j).iter() {
                if mask >> k & 1 == 1 {
                    nbr_count += 1;
                    let w = inst.w(j, k);
                    w_min = Some(match w_min {
                        None => w,
                        Some(cur) => cur.min(w),
                    });
                    new_n = new_n.mul(&S::from_ratio(&inst.selectivity().get(j, k)));
                }
            }
            let prefix_len = mask.count_ones() as usize;
            if nbr_count == 0 && !allow_cartesian {
                continue;
            }
            if nbr_count < prefix_len {
                // Some non-neighbour in S: the default w = t_j competes.
                let tj = inst.sizes()[j].clone();
                w_min = Some(match w_min {
                    None => tj,
                    Some(cur) => cur.min(tj),
                });
            }
            let step = n_s.mul(&S::from_count(&w_min.expect("prefix nonempty")));
            let cand = cost_s.add(&step);
            let nm = mask | 1 << j;
            let slot = &mut dp_hi[nm - (mask + 1)];
            if slot.as_ref().is_none_or(|cur| cand < *cur) {
                *slot = Some(cand);
                ns_hi[nm - (mask + 1)] = Some(new_n);
                parent[nm] = j as u8;
            }
        }
    }
    if aqo_obs::enabled() {
        aqo_obs::counter_handle!("optimizer.dp.subsets_expanded").add(subsets_expanded);
        aqo_obs::counter_handle!("optimizer.dp.transitions").add(transitions);
        aqo_obs::journal::event(
            "dp_done",
            vec![
                ("subsets_expanded", subsets_expanded.into()),
                ("transitions", transitions.into()),
            ],
        );
    }
    let Some(cost) = dp[full].clone() else { return Ok(None) };
    // Reconstruct the sequence.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask.count_ones() > 1 {
        let j = parent[mask] as usize;
        order.push(j);
        mask &= !(1 << j);
    }
    order.push(mask.trailing_zeros() as usize);
    order.reverse();
    Ok(Some(Optimum { sequence: JoinSequence::new(order), cost }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use aqo_bignum::{BigInt, BigRational, LogNum};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn random_instance(seed: u64, n: usize) -> QoNInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge((next() % v as u64) as usize, v);
        }
        for _ in 0..n {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 40)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 9));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn dp_matches_exhaustive_small() {
        for seed in 0..8u64 {
            let inst = random_instance(seed, 6);
            let dp_opt = optimize::<BigRational>(&inst, true).unwrap();
            let ex_opt: Optimum<BigRational> = exhaustive::optimize(&inst);
            assert_eq!(dp_opt.cost, ex_opt.cost, "seed {seed}");
            // The DP's sequence must achieve its claimed cost.
            let recost: BigRational = inst.total_cost(&dp_opt.sequence);
            assert_eq!(recost, dp_opt.cost);
        }
    }

    #[test]
    fn dp_no_cartesian_matches_exhaustive() {
        for seed in 0..6u64 {
            let inst = random_instance(seed + 100, 6);
            let dp_opt = optimize::<BigRational>(&inst, false).unwrap();
            let ex_opt = exhaustive::optimize_no_cartesian::<BigRational>(&inst).unwrap();
            assert_eq!(dp_opt.cost, ex_opt.cost, "seed {seed}");
            assert!(!inst.has_cartesian_product(&dp_opt.sequence));
        }
    }

    #[test]
    fn log_backend_finds_same_optimum_on_wellseparated_instances() {
        let inst = random_instance(7, 7);
        let exact = optimize::<BigRational>(&inst, true).unwrap();
        let log = optimize::<LogNum>(&inst, true).unwrap();
        let log_recost: BigRational = inst.total_cost(&log.sequence);
        // The log optimum might differ by a float hair; costs must agree to
        // float precision.
        let d = (CostScalar::log2(&exact.cost) - CostScalar::log2(&log_recost)).abs();
        assert!(d < 1e-6, "log-domain DP diverged: {d}");
    }

    #[test]
    fn disconnected_no_cartesian_is_none() {
        let g = Graph::new(4);
        let inst = QoNInstance::new(
            g,
            vec![BigUint::from(3u64); 4],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        assert!(optimize::<BigRational>(&inst, false).is_none());
        assert!(optimize::<BigRational>(&inst, true).is_some());
    }

    #[test]
    fn tiny_expansion_budget_trips() {
        let inst = random_instance(1, 8);
        let budget = Budget::unlimited().with_max_expansions(3);
        let err = optimize_with_budget::<BigRational>(&inst, true, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
        assert!(err.expansions >= 3);
    }

    #[test]
    fn generous_budget_matches_unbudgeted() {
        let inst = random_instance(2, 7);
        let budget = Budget::unlimited().with_max_expansions(1_000_000);
        let budgeted =
            optimize_with_budget::<BigRational>(&inst, true, &budget).unwrap().unwrap();
        let free = optimize::<BigRational>(&inst, true).unwrap();
        assert_eq!(budgeted.cost, free.cost);
        assert_eq!(budgeted.sequence.order(), free.sequence.order());
    }

    #[test]
    fn memory_cap_rejects_table_upfront() {
        let inst = random_instance(3, 12);
        let budget = Budget::unlimited().with_max_memory_bytes(64);
        let err = optimize_with_budget::<BigRational>(&inst, true, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Memory);
        // Nothing was expanded: the charge precedes the allocation.
        assert_eq!(err.expansions, 0);
    }

    #[test]
    fn single_vertex() {
        let inst = QoNInstance::new(
            Graph::new(1),
            vec![BigUint::from(9u64)],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        let opt = optimize::<BigRational>(&inst, false).unwrap();
        assert!(opt.cost.is_zero());
    }
}
