//! A genetic algorithm over join sequences (order crossover + swap
//! mutation), the last of the polynomial-time baselines for experiment F2.

use aqo_bignum::LogNum;
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters for [`optimize`].
#[derive(Clone, Debug)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-child probability of a swap mutation.
    pub mutation_rate: f64,
}

impl Default for GaParams {
    fn default() -> Self {
        GaParams { population: 48, generations: 120, tournament: 3, mutation_rate: 0.3 }
    }
}

fn fitness(inst: &QoNInstance, order: &[usize]) -> f64 {
    let z = JoinSequence::new(order.to_vec());
    let c: LogNum = inst.total_cost(&z);
    CostScalar::log2(&c) // lower is better
}

/// Order crossover (OX): copy a random slice from `a`, fill the rest in
/// `b`'s relative order.
fn order_crossover(a: &[usize], b: &[usize], rng: &mut impl Rng) -> Vec<usize> {
    let n = a.len();
    let (mut lo, mut hi) = (rng.gen_range(0..n), rng.gen_range(0..n));
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut child = vec![usize::MAX; n];
    let mut used = vec![false; n];
    for i in lo..=hi {
        child[i] = a[i];
        used[a[i]] = true;
    }
    let mut fill = b.iter().copied().filter(|&v| !used[v]);
    for slot in child.iter_mut() {
        if *slot == usize::MAX {
            *slot = fill.next().expect("exactly n-unused values");
        }
    }
    child
}

/// Runs the GA and returns the best sequence seen across all generations.
// analyze:allow(budget-hook-coverage) -- the GA runs exactly
// `params.generations * params.population` fitness evaluations, so its
// runtime is parameter-bounded; callers cap it via GaParams, not Budget.
pub fn optimize(inst: &QoNInstance, params: &GaParams, rng: &mut impl Rng) -> JoinSequence {
    let n = inst.n();
    if n <= 2 {
        return JoinSequence::identity(n);
    }
    let mut population: Vec<Vec<usize>> = (0..params.population.max(2))
        .map(|_| {
            let mut p: Vec<usize> = (0..n).collect();
            p.shuffle(rng);
            p
        })
        .collect();
    let mut scores: Vec<f64> = population.iter().map(|p| fitness(inst, p)).collect();
    let mut best_idx = argmin(&scores);
    let mut best = (population[best_idx].clone(), scores[best_idx]);

    for _ in 0..params.generations {
        let mut next_pop = Vec::with_capacity(population.len());
        // Elitism: carry the incumbent.
        next_pop.push(best.0.clone());
        while next_pop.len() < population.len() {
            let pa = tournament(&population, &scores, params.tournament, rng);
            let pb = tournament(&population, &scores, params.tournament, rng);
            let mut child = order_crossover(pa, pb, rng);
            if rng.gen_bool(params.mutation_rate) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                child.swap(i, j);
            }
            next_pop.push(child);
        }
        population = next_pop;
        scores = population.iter().map(|p| fitness(inst, p)).collect();
        best_idx = argmin(&scores);
        if scores[best_idx] < best.1 {
            best = (population[best_idx].clone(), scores[best_idx]);
        }
    }
    JoinSequence::new(best.0)
}

fn argmin(scores: &[f64]) -> usize {
    scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN-free"))
        .map(|(i, _)| i)
        .expect("nonempty population")
}

fn tournament<'a>(
    population: &'a [Vec<usize>],
    scores: &[f64],
    k: usize,
    rng: &mut impl Rng,
) -> &'a [usize] {
    let mut best: Option<usize> = None;
    for _ in 0..k.max(1) {
        let i = rng.gen_range(0..population.len());
        if best.is_none_or(|b| scores[i] < scores[b]) {
            best = Some(i);
        }
    }
    &population[best.expect("k >= 1")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid2x3() -> QoNInstance {
        // 0-1-2 / 3-4-5 grid.
        let edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)];
        let g = Graph::from_edges(6, &edges);
        let sizes: Vec<BigUint> = (0..6).map(|i| BigUint::from(3 + 4 * i as u64)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in edges {
            let sel = BigRational::new(BigInt::one(), BigUint::from(3u64));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn crossover_produces_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<usize> = (0..10).collect();
        let mut b = a.clone();
        b.reverse();
        for _ in 0..20 {
            let c = order_crossover(&a, &b, &mut rng);
            let _ = JoinSequence::new(c); // panics if not a permutation
        }
    }

    #[test]
    fn ga_close_to_optimum_small() {
        let inst = grid2x3();
        let mut rng = StdRng::seed_from_u64(5);
        let z = optimize(&inst, &GaParams::default(), &mut rng);
        let gc: BigRational = inst.total_cost(&z);
        let opt: crate::Optimum<BigRational> = exhaustive::optimize(&inst);
        assert!(gc >= opt.cost);
        assert!(CostScalar::log2(&gc) - CostScalar::log2(&opt.cost) < 2.0, "GA off by 4x+");
    }

    #[test]
    fn tiny_instance_identity() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut s = SelectivityMatrix::new();
        s.set(0, 1, BigRational::new(BigInt::one(), BigUint::from(2u64)));
        let mut w = AccessCostMatrix::new();
        w.set(0, 1, BigUint::from(1u64));
        w.set(1, 0, BigUint::from(1u64));
        let inst = QoNInstance::new(g, vec![BigUint::from(2u64); 2], s, w);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(optimize(&inst, &GaParams::default(), &mut rng).len(), 2);
    }
}
