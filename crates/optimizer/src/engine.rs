//! Parallel, allocation-lean two-phase subset-DP engine for QO_N over
//! sparse per-layer frontiers.
//!
//! The classic subset DP in [`crate::dp`] is exact but single-threaded and
//! clones big-number scalars in its `O(2^n · n²)` inner loop. This engine
//! restructures the same recurrence for speed without giving up a single
//! bit of exactness:
//!
//! 1. **Pull-style, layer-parallel evaluation.** Subsets of size `k`
//!    depend only on subsets of size `k − 1`, so each layer is evaluated
//!    in parallel over *target* subsets: a worker computes
//!    `dp[T] = min_{j ∈ T} dp[T∖{j}] + N(T∖{j})·min_{k ∈ T∖{j}} w*(j,k)`
//!    reading only the previous layer. Every target is written by exactly
//!    one worker (disjoint `&mut` chunks of a layer buffer), so results
//!    are bit-identical for every thread count.
//! 2. **Sparse per-layer frontiers.** Cost tables are per-layer vectors
//!    aligned with a sorted frontier of subset masks, not dense `2^n`
//!    arrays. The frontier is built in one of two modes
//!    ([`FrontierMode`]): *all subsets* when cartesian products are
//!    admissible (every subset is reachable), or *connected subgraphs
//!    only* — grown by neighborhood-restricted breadth-first `csg`
//!    expansion à la DPccp (Moerkotte–Neumann) — when they are not, since
//!    under the no-cartesian rule exactly the connected subsets are
//!    reachable. On the paper's §6 sparse families that collapses the
//!    table from `2^n` to `O(n²)` entries. Predecessor ranks come from
//!    the combinatorial number system (all-subsets mode, `O(k)` for all
//!    `k` predecessors of a target together) or a binary search in the
//!    sorted previous layer (connected mode) — no dense mask→rank table.
//! 3. **Two-phase costing.** Phase A runs the whole DP in the `f64`
//!    log-domain [`LogNum`] scalar, producing a candidate plan and, per
//!    frontier entry, a log-domain estimate of the cheapest way to reach
//!    it. Phase B re-runs the DP in the caller's exact scalar, but
//!    *prunes* every subset whose phase-A estimate exceeds the exact
//!    candidate cost by more than [`PRUNE_MARGIN_BITS`] — on realistic
//!    instances this skips the vast majority of subsets, eliminating
//!    almost all big-number arithmetic while provably returning the true
//!    optimum (see DESIGN.md §9 and §13 for the safety argument: phase-A
//!    error is bounded far below the margin, and costs only grow along a
//!    sequence, so a subset estimated more than the margin above the
//!    incumbent cannot prefix any plan that beats the incumbent).
//!
//! The per-transition access cost `min_{k ∈ S} w*(j,k)` is computed
//! directly from the neighbour bitmasks — `w(j,k)` over `nbr(j) ∩ S`,
//! with the default `t_j` competing whenever `S` holds a non-neighbour of
//! `j` — instead of through the incremental min-weight tables the dense
//! engine used to carry (two `widest·n` [`LogNum`] generations, the
//! dominant share of its 2.5× memory overhead over the sequential DP).
//!
//! Cancellation and deadlines keep working mid-layer: every worker ticks
//! the shared [`Budget`] (atomic interior) and unwinds with
//! [`BudgetExceeded`]; `std::thread::scope` joins every worker before the
//! error surfaces, so no threads outlive the call.

use crate::Optimum;
use aqo_bignum::LogNum;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::parallel::{par_chunks_zip, resolve_threads};
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};

/// Hard cap on `n` for the all-subsets mode, same as the sequential DP
/// (a `2^n` frontier is materialized). The connected mode is capped by
/// the mask width instead ([`crate::ccp::MAX_N`]).
pub const MAX_N: usize = crate::dp::MAX_N;

/// Safety margin, in bits, added to the exact incumbent's log₂ cost when
/// phase B prunes on phase-A estimates. Accumulated `f64` log-domain error
/// over a DP path is below `n · 2⁻⁴⁰` bits for `n ≤ 32` — more than
/// nine orders of magnitude smaller than this margin — so no subset on an
/// optimal path is ever pruned.
pub const PRUNE_MARGIN_BITS: f64 = 0.5;

/// Knobs for the engine.
#[derive(Clone, Copy, Debug)]
pub struct DpOptions {
    /// Whether sequences with cartesian products are admissible.
    pub allow_cartesian: bool,
    /// Worker threads; `0` means one per available hardware thread.
    pub threads: usize,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions { allow_cartesian: true, threads: 0 }
    }
}

/// How the per-layer frontiers are populated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FrontierMode {
    /// Every nonempty subset, grouped by popcount (cartesian products
    /// admissible: all of them are reachable).
    AllSubsets,
    /// Connected subgraphs only, grown by breadth-first neighborhood
    /// expansion (the reachable prefixes under the no-cartesian rule).
    Connected,
}

/// Which counter family a run reports under: the engine entry points or
/// the DPccp tier ([`crate::ccp`]). Both share this machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tier {
    Engine,
    Ccp,
}

impl Tier {
    fn record_run(self) {
        match self {
            Tier::Engine => aqo_obs::counter_handle!("optimizer.engine.runs").inc(),
            Tier::Ccp => aqo_obs::counter_handle!("optimizer.ccp.runs").inc(),
        }
    }

    fn record_log_layer(self, width: usize, k: usize) {
        match self {
            Tier::Engine => {
                aqo_obs::counter_handle!("optimizer.engine.subsets_expanded").add(width as u64);
                aqo_obs::counter_handle!("optimizer.engine.transitions").add((width * k) as u64);
            }
            Tier::Ccp => {
                aqo_obs::counter_handle!("optimizer.ccp.subsets_expanded").add(width as u64);
                aqo_obs::counter_handle!("optimizer.ccp.transitions").add((width * k) as u64);
            }
        }
    }

    /// The ccp tier counts singletons too, so its expansion total equals
    /// the number of connected subgraphs of the query graph exactly.
    fn record_singletons(self, n: usize) {
        if let Tier::Ccp = self {
            aqo_obs::counter_handle!("optimizer.ccp.subsets_expanded").add(n as u64);
        }
    }

    fn record_exact_layer(self, recosted: u64, pruned: u64) {
        match self {
            Tier::Engine => {
                aqo_obs::counter_handle!("optimizer.engine.exact_recosts").add(recosted);
                aqo_obs::counter_handle!("optimizer.engine.pruned").add(pruned);
            }
            Tier::Ccp => {
                aqo_obs::counter_handle!("optimizer.ccp.exact_recosts").add(recosted);
                aqo_obs::counter_handle!("optimizer.ccp.pruned").add(pruned);
            }
        }
    }
}

/// Pascal's triangle up to `n`, backing the combinatorial-number-system
/// subset ranking that replaced the dense mask→rank table.
pub(crate) struct Binom {
    w: usize,
    c: Vec<u32>,
}

impl Binom {
    pub(crate) fn build(n: usize) -> Binom {
        let w = n + 1;
        let mut c = vec![0u32; w * w];
        c[0] = 1;
        for p in 1..=n {
            c[p * w] = 1;
            for i in 1..=p {
                let up = c[(p - 1) * w + i - 1];
                let left = if i < p { c[(p - 1) * w + i] } else { 0 };
                c[p * w + i] = up + left;
            }
        }
        Binom { w, c }
    }

    #[inline]
    fn c(&self, p: usize, i: usize) -> u32 {
        if i > p {
            0
        } else {
            self.c[p * self.w + i]
        }
    }
}

/// Per-layer subset frontiers: `layers[k]` holds the masks the DP visits
/// at popcount `k`, sorted ascending. Cost tables are vectors aligned
/// with these frontiers, so their size tracks the *reachable* state
/// space, not `2^n`.
pub(crate) struct Frontiers {
    mode: FrontierMode,
    layers: Vec<Vec<u32>>,
}

impl Frontiers {
    /// Builds the frontiers for `n` relations with per-vertex neighbour
    /// bitmasks `nbr`. Every layer's bytes are charged against the budget
    /// before allocation; construction checkpoints (deadline/cancel) per
    /// layer but does not consume expansion ticks — only DP transitions
    /// do.
    pub(crate) fn build(
        n: usize,
        nbr: &[u32],
        mode: FrontierMode,
        budget: &Budget,
    ) -> Result<Frontiers, BudgetExceeded> {
        let mut layers: Vec<Vec<u32>> = vec![Vec::new(); n + 1];
        layers[1] = (0..n).map(|v| 1u32 << v).collect();
        budget.charge_memory((n * 4) as u64)?;
        match mode {
            FrontierMode::AllSubsets => {
                let full = (1usize << n) - 1;
                budget.charge_memory((full * 4) as u64)?;
                budget.checkpoint()?;
                let binom = Binom::build(n);
                for (k, layer) in layers.iter_mut().enumerate().skip(2) {
                    layer.reserve_exact(binom.c(n, k) as usize);
                }
                for m in (1..=full).map(|m| m as u32) {
                    let k = m.count_ones() as usize;
                    if k >= 2 {
                        layers[k].push(m);
                    }
                }
            }
            FrontierMode::Connected => {
                for k in 1..n {
                    budget.checkpoint()?;
                    // Candidate count first, so the expansion buffer is
                    // charged before it is allocated.
                    let mut cand = 0usize;
                    for &s in &layers[k] {
                        cand += (nbr_union(nbr, s) & !s).count_ones() as usize;
                    }
                    budget.charge_memory((cand * 4) as u64)?;
                    let mut next: Vec<u32> = Vec::with_capacity(cand);
                    for &s in &layers[k] {
                        let mut ext = nbr_union(nbr, s) & !s;
                        while ext != 0 {
                            let j = ext.trailing_zeros();
                            ext &= ext - 1;
                            next.push(s | 1 << j);
                        }
                    }
                    next.sort_unstable();
                    next.dedup();
                    if next.is_empty() {
                        break; // disconnected graph: no larger subgraph
                    }
                    layers[k + 1] = next;
                }
            }
        }
        Ok(Frontiers { mode, layers })
    }

    pub(crate) fn layer(&self, k: usize) -> &[u32] {
        &self.layers[k]
    }

    /// Total frontier entries across all layers (singletons included).
    pub(crate) fn total_subsets(&self) -> u64 {
        self.layers.iter().map(|l| l.len() as u64).sum()
    }
}

/// Union of the neighbour masks over the members of `s`.
#[inline]
fn nbr_union(nbr: &[u32], s: u32) -> u32 {
    let mut acc = 0u32;
    let mut b = s;
    while b != 0 {
        let v = b.trailing_zeros() as usize;
        b &= b - 1;
        acc |= nbr[v];
    }
    acc
}

/// Writes, for each set bit `b_i` of `t` (ascending), the rank of
/// `t ∖ {b_i}` in the previous layer into `out[i]`, or `u32::MAX` when
/// that subset is not on the frontier (a cut vertex in connected mode).
/// Returns the popcount of `t`.
///
/// All-subsets mode needs no search: the rank of a `k`-subset in the
/// ascending order is its combinatorial number system value
/// `Σ C(b_i, i+1)`, and removing `b_i` keeps the prefix terms while the
/// suffix bits each drop one index — two running sums give all `k`
/// predecessor ranks in `O(k)`.
fn pred_ranks(
    mode: FrontierMode,
    binom: &Binom,
    prev_layer: &[u32],
    t: u32,
    out: &mut [u32; 32],
) -> usize {
    let mut bits = [0u8; 32];
    let mut k = 0usize;
    let mut b = t;
    while b != 0 {
        bits[k] = b.trailing_zeros() as u8;
        b &= b - 1;
        k += 1;
    }
    match mode {
        FrontierMode::AllSubsets => {
            let mut suf = 0u32;
            for i in (0..k).rev() {
                out[i] = suf;
                suf += binom.c(bits[i] as usize, i);
            }
            let mut pre = 0u32;
            for (i, &bi) in bits[..k].iter().enumerate() {
                out[i] += pre;
                pre += binom.c(bi as usize, i + 1);
            }
        }
        FrontierMode::Connected => {
            for (i, &bi) in bits[..k].iter().enumerate() {
                let s = t & !(1u32 << bi);
                out[i] = prev_layer.binary_search(&s).map_or(u32::MAX, |r| r as u32);
            }
        }
    }
    k
}

/// Precomputed log-domain view of an instance: neighbour bitmasks and the
/// `t`, `w*`, `s` scalars converted to [`LogNum`] once, so the phase-A hot
/// loop allocates nothing and touches no big numbers.
struct LogView {
    nbr: Vec<u32>,
    tlog: Vec<LogNum>,
    /// `w*(j,k)` row-major; diagonal entries are `+inf` (never selected).
    wlog: Vec<LogNum>,
    /// Selectivities row-major; `1` off the query graph.
    slog: Vec<LogNum>,
}

impl LogView {
    fn build(inst: &QoNInstance) -> LogView {
        let n = inst.n();
        let mut nbr = vec![0u32; n];
        for (j, b) in nbr.iter_mut().enumerate() {
            for k in inst.graph().neighbors(j).iter() {
                *b |= 1 << k;
            }
        }
        let tlog: Vec<LogNum> =
            inst.sizes().iter().map(<LogNum as CostScalar>::from_count).collect();
        let mut wlog = vec![LogNum::INFINITY; n * n];
        let mut slog = vec![LogNum::ONE; n * n];
        for j in 0..n {
            for k in 0..n {
                if j == k {
                    continue;
                }
                wlog[j * n + k] = <LogNum as CostScalar>::from_count(&inst.w(j, k));
                if inst.graph().has_edge(j, k) {
                    slog[j * n + k] =
                        <LogNum as CostScalar>::from_ratio(&inst.selectivity().get(j, k));
                }
            }
        }
        LogView { nbr, tlog, wlog, slog }
    }
}

/// Phase-A output: per-layer log-domain cost estimates, frontier-aligned,
/// and the winning predecessor per entry.
struct LogDp {
    dp: Vec<Vec<LogNum>>,
    parent: Vec<Vec<u8>>,
}

#[inline]
fn unreached(v: LogNum) -> bool {
    v.log2() == f64::INFINITY
}

/// Walks parent pointers down the frontiers from the full set. `None`
/// when the full set never made it onto the frontier (disconnected graph
/// in connected mode) or was never reached.
fn reconstruct_order(frontiers: &Frontiers, parent: &[Vec<u8>], n: usize) -> Option<JoinSequence> {
    if frontiers.layer(n).is_empty() {
        return None;
    }
    let mut order = Vec::with_capacity(n);
    let mut mask = frontiers.layer(n)[0];
    let mut rank = 0usize;
    for k in (2..=n).rev() {
        let j = parent[k][rank];
        if j == u8::MAX {
            return None;
        }
        order.push(j as usize);
        mask &= !(1u32 << j);
        rank = frontiers.layer(k - 1).binary_search(&mask).ok()?;
    }
    order.push(mask.trailing_zeros() as usize);
    order.reverse();
    Some(JoinSequence::new(order))
}

/// `min_{k ∈ S} w*(j,k)` straight off the neighbour bitmask: edges of `j`
/// inside `s` contribute `w(j,k)`; any non-neighbour in `s` lets the
/// default access path `t_j` compete. Replaces the dense engine's
/// incremental min-weight tables.
#[inline]
fn wmin_log(view: &LogView, n: usize, j: usize, s: u32) -> LogNum {
    let mut wmin = LogNum::INFINITY;
    let mut bits = view.nbr[j] & s;
    while bits != 0 {
        let k = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        wmin = wmin.min(view.wlog[j * n + k]);
    }
    if s & !view.nbr[j] != 0 {
        wmin = wmin.min(view.tlog[j]);
    }
    wmin
}

/// Phase A: the subset DP in log domain over the sparse frontiers,
/// layer-parallel.
fn log_phase(
    inst: &QoNInstance,
    frontiers: &Frontiers,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
    tier: Tier,
) -> Result<LogDp, BudgetExceeded> {
    let _span = aqo_obs::span("engine.log_phase");
    let n = inst.n();
    let view = LogView::build(inst);
    let binom = Binom::build(n);
    // The n×n log-domain view tables, charged before the layer loop.
    budget.charge_memory(((2 * n * n + n) * std::mem::size_of::<LogNum>()) as u64)?;
    budget.checkpoint()?;

    let mut dp_layers: Vec<Vec<LogNum>> = vec![Vec::new(); n + 1];
    let mut parent_layers: Vec<Vec<u8>> = vec![Vec::new(); n + 1];
    dp_layers[1] = vec![LogNum::ZERO; n];
    parent_layers[1] = vec![u8::MAX; n];
    let mut nlog_prev: Vec<LogNum> = view.tlog.clone();
    let mut nlog_cur: Vec<LogNum> = Vec::new();
    let mut results: Vec<(LogNum, LogNum, u8)> = Vec::new();
    let mut scratch_charged = 0usize;
    tier.record_singletons(n);

    for k in 2..=n {
        let targets = frontiers.layer(k);
        if targets.is_empty() {
            break; // connected mode on a disconnected graph
        }
        let width = targets.len();
        // Persistent per-layer tables plus the reusable worker scratch
        // (results + the rolling N(S) buffer), charged before resizing.
        let persist = width * (std::mem::size_of::<LogNum>() + 1);
        let scratch = width
            * (std::mem::size_of::<(LogNum, LogNum, u8)>() + std::mem::size_of::<LogNum>());
        let grow = scratch.saturating_sub(scratch_charged);
        budget.charge_memory((persist + grow) as u64)?;
        scratch_charged = scratch_charged.max(scratch);
        results.clear();
        results.resize(width, (LogNum::INFINITY, LogNum::ZERO, u8::MAX));
        let dp_prev: &[LogNum] = &dp_layers[k - 1];
        let prev_layer = frontiers.layer(k - 1);

        par_chunks_zip(threads, targets, &mut results, |_, ts, res| {
            let mut ranks = [u32::MAX; 32];
            for (i, &tm) in ts.iter().enumerate() {
                budget.tick_n(k as u64)?;
                let kk = pred_ranks(frontiers.mode, &binom, prev_layer, tm, &mut ranks);
                // N(T), order-invariant, from the canonical parent: the
                // lowest removed bit whose remainder is on the frontier
                // (in all-subsets mode that is always the lowest bit).
                let mut nl = LogNum::ZERO;
                let mut best = LogNum::INFINITY;
                let mut bj = u8::MAX;
                let mut canonical = false;
                let mut tb = tm;
                for &r in &ranks[..kk] {
                    let j = tb.trailing_zeros() as usize;
                    tb &= tb - 1;
                    if r == u32::MAX {
                        continue; // T∖{j} is off the frontier (cut vertex)
                    }
                    let s = tm & !(1u32 << j);
                    if !canonical {
                        canonical = true;
                        nl = nlog_prev[r as usize] * view.tlog[j];
                        let mut bits = view.nbr[j] & s;
                        while bits != 0 {
                            let v = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            nl = nl * view.slog[j * n + v];
                        }
                    }
                    let d = dp_prev[r as usize];
                    if unreached(d) {
                        continue;
                    }
                    if !allow_cartesian && view.nbr[j] & s == 0 {
                        continue;
                    }
                    let cand = d + nlog_prev[r as usize] * wmin_log(&view, n, j, s);
                    if cand < best {
                        best = cand;
                        bj = j as u8;
                    }
                }
                res[i] = (best, nl, bj);
            }
            Ok(())
        })?;

        nlog_cur.clear();
        nlog_cur.reserve(width);
        let mut dp_k = Vec::with_capacity(width);
        let mut parent_k = Vec::with_capacity(width);
        for &(c, nl, pj) in &results {
            dp_k.push(c);
            nlog_cur.push(nl);
            parent_k.push(pj);
        }
        dp_layers[k] = dp_k;
        parent_layers[k] = parent_k;
        std::mem::swap(&mut nlog_prev, &mut nlog_cur);
        // Layer stats are pure functions of the layer geometry, recorded
        // once per layer on the coordinating thread — deterministic for
        // every thread count, zero cost inside the worker hot loop.
        if aqo_obs::enabled() {
            tier.record_log_layer(width, k);
            let chunk = width.div_ceil(threads.max(1));
            let chunks = if chunk >= width { 1 } else { width.div_ceil(chunk) };
            aqo_obs::journal::event(
                "dp_layer",
                vec![
                    ("phase", "log".into()),
                    ("k", k.into()),
                    ("width", width.into()),
                    ("chunks", chunks.into()),
                ],
            );
        }
    }
    Ok(LogDp { dp: dp_layers, parent: parent_layers })
}

/// Precomputed exact-scalar view: `t_j`, `w*(j,k)`, and edge selectivities
/// embedded into `S` once, so phase B's loop clones nothing.
struct ExactView<S> {
    ts: Vec<S>,
    wexs: Vec<S>,
    sels: Vec<S>,
}

impl<S: CostScalar> ExactView<S> {
    fn build(inst: &QoNInstance) -> ExactView<S> {
        let n = inst.n();
        let ts: Vec<S> = inst.sizes().iter().map(S::from_count).collect();
        let mut wexs: Vec<S> = Vec::with_capacity(n * n);
        let mut sels: Vec<S> = Vec::with_capacity(n * n);
        for (j, tj) in ts.iter().enumerate() {
            for k in 0..n {
                if j == k {
                    wexs.push(tj.clone()); // placeholder, never selected
                    sels.push(S::one());
                    continue;
                }
                wexs.push(S::from_count(&inst.w(j, k)));
                sels.push(if inst.graph().has_edge(j, k) {
                    S::from_ratio(&inst.selectivity().get(j, k))
                } else {
                    S::one()
                });
            }
        }
        ExactView { ts, wexs, sels }
    }
}

/// Phase B: the exact DP over the same frontiers, layer-parallel,
/// skipping every entry whose phase-A estimate exceeds `bound_log2`.
#[allow(clippy::too_many_arguments)]
fn exact_phase<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    frontiers: &Frontiers,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
    prune: Option<(&[Vec<LogNum>], f64)>,
    nbr: &[u32],
    tier: Tier,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("engine.exact_phase");
    let n = inst.n();
    let binom = Binom::build(n);
    let entry = std::mem::size_of::<Option<S>>();
    budget.charge_memory(((2 * n * n + n) * entry) as u64)?;
    budget.checkpoint()?;

    let view = ExactView::<S>::build(inst);
    let mut dp_prev: Vec<Option<S>> = (0..n).map(|_| Some(S::zero())).collect();
    let mut ns_prev: Vec<Option<S>> =
        inst.sizes().iter().map(|t| Some(S::from_count(t))).collect();
    let mut parent_layers: Vec<Vec<u8>> = vec![Vec::new(); n + 1];
    parent_layers[1] = vec![u8::MAX; n];
    let mut results: Vec<Option<(S, S, u8)>> = Vec::new();
    let mut scratch_charged = 0usize;

    for k in 2..=n {
        let targets = frontiers.layer(k);
        if targets.is_empty() {
            return Ok(None);
        }
        let width = targets.len();
        let persist = width * (2 * entry + 1);
        let scratch = width * std::mem::size_of::<Option<(S, S, u8)>>();
        let grow = scratch.saturating_sub(scratch_charged);
        budget.charge_memory((persist + grow) as u64)?;
        scratch_charged = scratch_charged.max(scratch);
        results.clear();
        results.resize(width, None);
        let prev_layer = frontiers.layer(k - 1);
        let est = prune.map(|(layers, bound)| (&layers[k], bound));

        par_chunks_zip(threads, targets, &mut results, |offset, ts, res| {
            let mut ranks = [u32::MAX; 32];
            for (i, &tm) in ts.iter().enumerate() {
                if let Some((est, bound)) = est {
                    if est[offset + i].log2() > bound {
                        budget.tick_n(1)?;
                        continue; // provably off every improving path
                    }
                }
                budget.tick_n(k as u64)?;
                let kk = pred_ranks(frontiers.mode, &binom, prev_layer, tm, &mut ranks);
                let mut best: Option<(S, u8)> = None;
                let mut tb = tm;
                for &r in &ranks[..kk] {
                    let j = tb.trailing_zeros() as usize;
                    tb &= tb - 1;
                    if r == u32::MAX {
                        continue;
                    }
                    let Some(dps) = dp_prev[r as usize].as_ref() else { continue };
                    let s = tm & !(1u32 << j);
                    if !allow_cartesian && nbr[j] & s == 0 {
                        continue;
                    }
                    // analyze:allow(no-unwrap-in-lib) -- dp and ns entries
                    // are written together; a reached dp without its N(S)
                    // is a programming error, not a runtime condition.
                    let ns = ns_prev[r as usize].as_ref().expect("N(S) set with dp");
                    // min_{k ∈ S} w*(j,k), by reference: zero clones.
                    let mut wmin: Option<&S> = None;
                    let mut bits = nbr[j] & s;
                    while bits != 0 {
                        let v = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let w = &view.wexs[j * n + v];
                        if wmin.is_none_or(|cur| w < cur) {
                            wmin = Some(w);
                        }
                    }
                    if s & !nbr[j] != 0 {
                        let tj = &view.ts[j];
                        if wmin.is_none_or(|cur| tj < cur) {
                            wmin = Some(tj);
                        }
                    }
                    // analyze:allow(no-unwrap-in-lib) -- `s` has k−1 ≥ 1
                    // members, and every member feeds wmin through its
                    // edge or the non-neighbour default branch.
                    let cand = dps.add(&ns.mul(wmin.expect("prefix nonempty")));
                    if best.as_ref().is_none_or(|(b, _)| cand < *b) {
                        best = Some((cand, j as u8));
                    }
                }
                // analyze:allow(no-unwrap-in-lib) -- the winning parent's
                // rank and N(S) both exist by construction: `j` won the
                // min over exactly the predecessors found on the frontier.
                res[i] = best.map(|(cost, j)| {
                    // N(T) once per subset, from the winning parent only.
                    let s = tm & !(1u32 << j);
                    let r = match frontiers.mode {
                        FrontierMode::AllSubsets | FrontierMode::Connected => prev_layer
                            .binary_search(&s)
                            .expect("winning parent is on the frontier"),
                    };
                    let mut nn =
                        ns_prev[r].as_ref().expect("winner has N(S)").mul(&view.ts[j as usize]);
                    let mut bits = nbr[j as usize] & s;
                    while bits != 0 {
                        let v = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        nn = nn.mul(&view.sels[j as usize * n + v]);
                    }
                    (cost, nn, j)
                });
            }
            Ok(())
        })?;

        let mut dp_k: Vec<Option<S>> = Vec::with_capacity(width);
        let mut ns_k: Vec<Option<S>> = Vec::with_capacity(width);
        let mut parent_k = Vec::with_capacity(width);
        for slot in results.iter_mut() {
            match slot.take() {
                Some((c, nn, pj)) => {
                    dp_k.push(Some(c));
                    ns_k.push(Some(nn));
                    parent_k.push(pj);
                }
                None => {
                    dp_k.push(None);
                    ns_k.push(None);
                    parent_k.push(u8::MAX);
                }
            }
        }
        dp_prev = dp_k;
        ns_prev = ns_k;
        parent_layers[k] = parent_k;
        // Prune/recost counts are a pure function of the phase-A estimates
        // and the bound — replayed here on the coordinating thread so the
        // totals are deterministic for every thread count.
        if aqo_obs::enabled() {
            let (mut pruned, mut recosted) = (0u64, 0u64);
            match est {
                Some((est, bound)) => {
                    for e in est {
                        if e.log2() > bound {
                            pruned += 1;
                        } else {
                            recosted += 1;
                        }
                    }
                }
                None => recosted = width as u64,
            }
            tier.record_exact_layer(recosted, pruned);
            aqo_obs::journal::event(
                "dp_layer",
                vec![
                    ("phase", "exact".into()),
                    ("k", k.into()),
                    ("width", width.into()),
                    ("recosted", recosted.into()),
                    ("pruned", pruned.into()),
                ],
            );
        }
    }

    let Some(cost) = dp_prev[0].take() else { return Ok(None) };
    let Some(sequence) = reconstruct_order(frontiers, &parent_layers, n) else {
        return Ok(None);
    };
    Ok(Some(Optimum { sequence, cost }))
}

/// The shared log-phase-only path behind [`optimize_log_parallel`].
fn log_impl(
    inst: &QoNInstance,
    mode: FrontierMode,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
    tier: Tier,
) -> Result<Option<Optimum<LogNum>>, BudgetExceeded> {
    let n = inst.n();
    let view_nbr: Vec<u32> = nbr_masks(inst);
    let frontiers = Frontiers::build(n, &view_nbr, mode, budget)?;
    let log = log_phase(inst, &frontiers, allow_cartesian, threads, budget, tier)?;
    if frontiers.layer(n).is_empty() || unreached(log.dp[n][0]) {
        return Ok(None);
    }
    let cost = log.dp[n][0];
    Ok(reconstruct_order(&frontiers, &log.parent, n).map(|sequence| Optimum { sequence, cost }))
}

/// The shared two-phase path behind [`optimize_two_phase`] and
/// [`crate::ccp::optimize_two_phase`].
pub(crate) fn two_phase_impl<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    mode: FrontierMode,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
    tier: Tier,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("engine.two_phase");
    let n = inst.n();
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: S::zero() }));
    }
    tier.record_run();
    let threads = resolve_threads(threads);
    let nbr = nbr_masks(inst);
    let frontiers = Frontiers::build(n, &nbr, mode, budget)?;
    let log = log_phase(inst, &frontiers, allow_cartesian, threads, budget, tier)?;
    if frontiers.layer(n).is_empty() || unreached(log.dp[n][0]) {
        // Unreachable full set is a combinatorial fact (disconnected graph
        // under the no-cartesian rule), identical in both scalars.
        return Ok(None);
    }
    let Some(candidate) = reconstruct_order(&frontiers, &log.parent, n) else {
        return Ok(None);
    };
    let exact_candidate: S = inst.total_cost(&candidate);
    let bound = exact_candidate.log2() + PRUNE_MARGIN_BITS;
    aqo_obs::journal::event("engine_bound", vec![("bound_log2", bound.into())]);
    let opt = exact_phase::<S>(
        inst,
        &frontiers,
        allow_cartesian,
        threads,
        budget,
        Some((&log.dp, bound)),
        &nbr,
        tier,
    )?;
    debug_assert!(opt.is_some(), "candidate path is never pruned");
    Ok(opt)
}

/// Per-vertex neighbour bitmasks of the query graph.
pub(crate) fn nbr_masks(inst: &QoNInstance) -> Vec<u32> {
    (0..inst.n())
        .map(|j| inst.graph().neighbors(j).iter().fold(0u32, |m, k| m | 1 << k))
        .collect()
}

/// Phase A alone: the layer-parallel log-domain DP. Fast and allocation
/// free in the hot loop, but subject to `f64` rounding like any
/// [`LogNum`] optimizer; use [`optimize_two_phase`] when exact optimality
/// must be certified.
pub fn optimize_log_parallel(
    inst: &QoNInstance,
    opts: &DpOptions,
    budget: &Budget,
) -> Result<Option<Optimum<LogNum>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "engine DP is for n in 1..={MAX_N}");
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: LogNum::ZERO }));
    }
    let threads = resolve_threads(opts.threads);
    let mode =
        if opts.allow_cartesian { FrontierMode::AllSubsets } else { FrontierMode::Connected };
    log_impl(inst, mode, opts.allow_cartesian, threads, budget, Tier::Engine)
}

/// The two-phase engine: log-domain phase A for a candidate and per-subset
/// pruning estimates, exact phase B (in the caller's scalar `S`) that
/// verifies or repairs the candidate and returns the certified optimum.
///
/// With `allow_cartesian = false` the frontiers hold connected subgraphs
/// only — exactly the reachable prefixes — so table sizes follow the
/// query graph's density instead of `2^n`.
///
/// Bit-identical to [`crate::dp::optimize_with_budget`] in returned cost
/// for every thread count; the plan is a valid sequence achieving that
/// cost (tie-breaking may choose a different equal-cost plan).
pub fn optimize_two_phase<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    opts: &DpOptions,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "engine DP is for n in 1..={MAX_N}");
    let mode =
        if opts.allow_cartesian { FrontierMode::AllSubsets } else { FrontierMode::Connected };
    two_phase_impl(inst, mode, opts.allow_cartesian, opts.threads, budget, Tier::Engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn random_instance(seed: u64, n: usize, extra_edges: usize) -> QoNInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge((next() % v as u64) as usize, v);
        }
        for _ in 0..extra_edges {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 40)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 9));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    fn chain_instance(n: usize) -> QoNInstance {
        let mut g = Graph::new(n);
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        let sizes: Vec<BigUint> = (0..n).map(|i| BigUint::from(3 + i as u64)).collect();
        for v in 1..n {
            g.add_edge(v - 1, v);
            let sel = BigRational::new(BigInt::one(), BigUint::from(3u64));
            s.set(v - 1, v, sel.clone());
            for (j, k) in [(v - 1, v), (v, v - 1)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn two_phase_matches_sequential_dp_exactly() {
        for seed in 0..10u64 {
            let inst = random_instance(seed, 7, 7);
            for allow in [true, false] {
                let seq = dp::optimize::<BigRational>(&inst, allow);
                for threads in [1usize, 2, 4] {
                    let opts = DpOptions { allow_cartesian: allow, threads };
                    let par = optimize_two_phase::<BigRational>(
                        &inst,
                        &opts,
                        &Budget::unlimited(),
                    )
                    .unwrap();
                    match (&seq, &par) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.cost, b.cost, "seed {seed} threads {threads}");
                            let recost: BigRational = inst.total_cost(&b.sequence);
                            assert_eq!(recost, b.cost);
                            if !allow {
                                assert!(!inst.has_cartesian_product(&b.sequence));
                            }
                        }
                        (None, None) => {}
                        other => panic!("feasibility mismatch: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn log_parallel_deterministic_and_close_to_sequential_log_dp() {
        for seed in [3u64, 11, 29] {
            let inst = random_instance(seed, 8, 6);
            let seq = dp::optimize::<LogNum>(&inst, true).unwrap();
            let mut baseline: Option<(u64, Vec<usize>)> = None;
            for threads in [1usize, 2, 3, 7] {
                let opts = DpOptions { allow_cartesian: true, threads };
                let par =
                    optimize_log_parallel(&inst, &opts, &Budget::unlimited()).unwrap().unwrap();
                // The engine evaluates the same canonical recurrence for any
                // thread count: bit-identical cost AND identical plan.
                let fp = (par.cost.log2().to_bits(), par.sequence.order().to_vec());
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(*b, fp, "seed {seed} threads {threads}"),
                }
                // Against the sequential push-style log DP the association
                // order of the f64 products differs, so agreement is to
                // float precision, not to the bit.
                assert!(
                    (par.cost.log2() - seq.cost.log2()).abs() < 1e-9,
                    "seed {seed}: engine {} vs dp {}",
                    par.cost.log2(),
                    seq.cost.log2()
                );
            }
        }
    }

    #[test]
    fn disconnected_instances() {
        let g = Graph::new(4);
        let inst = QoNInstance::new(
            g,
            vec![BigUint::from(3u64); 4],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        let opts = DpOptions { allow_cartesian: false, threads: 2 };
        assert!(optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .unwrap()
            .is_none());
        let opts = DpOptions { allow_cartesian: true, threads: 2 };
        let opt = optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .unwrap()
            .unwrap();
        let seq = dp::optimize::<BigRational>(&inst, true).unwrap();
        assert_eq!(opt.cost, seq.cost);
    }

    #[test]
    fn single_vertex() {
        let inst = QoNInstance::new(
            Graph::new(1),
            vec![BigUint::from(9u64)],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        let opt = optimize_two_phase::<BigRational>(
            &inst,
            &DpOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap()
        .unwrap();
        assert!(opt.cost.is_zero());
    }

    #[test]
    fn expansion_cap_trips_in_parallel_layers() {
        let inst = random_instance(5, 9, 6);
        let budget = Budget::unlimited().with_max_expansions(40);
        let opts = DpOptions { allow_cartesian: true, threads: 4 };
        let err = optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
    }

    #[test]
    fn memory_cap_trips_before_any_expansion() {
        let inst = random_instance(6, 12, 8);
        let budget = Budget::unlimited().with_max_memory_bytes(64);
        let opts = DpOptions { allow_cartesian: true, threads: 2 };
        let err = optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Memory);
        assert_eq!(err.expansions, 0, "charged before any expansion");
    }

    #[test]
    fn connected_frontier_charges_far_less_memory_than_all_subsets() {
        let inst = chain_instance(14);
        let dense_budget = Budget::unlimited();
        let opts = DpOptions { allow_cartesian: true, threads: 2 };
        optimize_two_phase::<BigRational>(&inst, &opts, &dense_budget).unwrap().unwrap();
        let sparse_budget = Budget::unlimited();
        let opts = DpOptions { allow_cartesian: false, threads: 2 };
        optimize_two_phase::<BigRational>(&inst, &opts, &sparse_budget).unwrap().unwrap();
        // A chain has n(n+1)/2 connected subsets vs 2^n − 1 subsets
        // overall; the charge must collapse accordingly (well over 10×).
        assert!(
            sparse_budget.memory_charged() * 10 < dense_budget.memory_charged(),
            "sparse {} vs dense {}",
            sparse_budget.memory_charged(),
            dense_budget.memory_charged()
        );
    }

    #[test]
    fn frontiers_cover_all_masks_in_order() {
        let nbr = vec![0u32; 5];
        let f =
            Frontiers::build(5, &nbr, FrontierMode::AllSubsets, &Budget::unlimited()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in 1..=5usize {
            let layer = f.layer(k);
            assert!(layer.windows(2).all(|w| w[0] < w[1]));
            for &m in layer {
                assert_eq!(m.count_ones() as usize, k);
                assert!(seen.insert(m));
            }
        }
        assert_eq!(seen.len(), 31);
        assert_eq!(f.total_subsets(), 31);
    }

    #[test]
    fn connected_frontier_of_a_chain_has_interval_subsets_only() {
        let inst = chain_instance(6);
        let nbr = nbr_masks(&inst);
        let f = Frontiers::build(6, &nbr, FrontierMode::Connected, &Budget::unlimited()).unwrap();
        // Connected subsets of a 6-chain are exactly the 21 intervals.
        assert_eq!(f.total_subsets(), 21);
        for k in 1..=6usize {
            assert_eq!(f.layer(k).len(), 6 - k + 1, "layer {k}");
            for &m in f.layer(k) {
                // An interval mask is a contiguous run of ones.
                let shifted = m >> m.trailing_zeros();
                assert_eq!(shifted & (shifted + 1), 0, "mask {m:b} not contiguous");
            }
        }
    }

    #[test]
    fn dense_pred_ranks_match_binary_search() {
        let nbr = vec![0u32; 8];
        let f =
            Frontiers::build(8, &nbr, FrontierMode::AllSubsets, &Budget::unlimited()).unwrap();
        let binom = Binom::build(8);
        let mut out = [u32::MAX; 32];
        for k in 2..=8usize {
            let prev = f.layer(k - 1);
            for &t in f.layer(k) {
                let kk = pred_ranks(FrontierMode::AllSubsets, &binom, prev, t, &mut out);
                assert_eq!(kk, k);
                let mut tb = t;
                for &r in &out[..kk] {
                    let j = tb.trailing_zeros();
                    tb &= tb - 1;
                    let s = t & !(1u32 << j);
                    assert_eq!(r as usize, prev.binary_search(&s).unwrap(), "t={t:b} j={j}");
                }
            }
        }
    }
}
