//! Parallel, allocation-lean two-phase subset-DP engine for QO_N.
//!
//! The classic subset DP in [`crate::dp`] is exact but single-threaded and
//! clones big-number scalars in its `O(2^n · n²)` inner loop. This engine
//! restructures the same recurrence for speed without giving up a single
//! bit of exactness:
//!
//! 1. **Pull-style, layer-parallel evaluation.** Subsets of size `k`
//!    depend only on subsets of size `k − 1`, so each layer is evaluated
//!    in parallel over *target* subsets: a worker computes
//!    `dp[T] = min_{j ∈ T} dp[T∖{j}] + N(T∖{j})·min_{k ∈ T∖{j}} w*(j,k)`
//!    reading only the previous layer. Every target is written by exactly
//!    one worker (disjoint `&mut` chunks of a layer buffer), so results
//!    are bit-identical for every thread count.
//! 2. **Incremental min-weight-into-prefix table.** Instead of rescanning
//!    `min_{k ∈ S} w*(j,k)` per transition, the engine maintains, per
//!    prefix `S` of the previous layer, the row `M[S][j]` via
//!    `M[S][j] = min(M[S∖{lowest}][j], w*(j, lowest))` — one comparison
//!    per relation per subset instead of one scan per transition (where
//!    `w*(j,k) = w(j,k)` on query-graph edges and the default `t_j`
//!    otherwise, exactly the cost model's access-path rule).
//! 3. **Two-phase costing.** Phase A runs the whole DP in the `f64`
//!    log-domain [`LogNum`] scalar, producing a candidate plan and, per
//!    subset, a log-domain estimate of the cheapest way to reach it.
//!    Phase B re-runs the DP in the caller's exact scalar, but *prunes*
//!    every subset whose phase-A estimate exceeds the exact candidate
//!    cost by more than [`PRUNE_MARGIN_BITS`] — on realistic instances
//!    this skips the vast majority of subsets, eliminating almost all
//!    big-number arithmetic while provably returning the true optimum
//!    (see DESIGN.md §9 for the safety argument: phase-A error is bounded
//!    far below the margin, and costs only grow along a sequence, so a
//!    subset estimated more than the margin above the incumbent cannot
//!    prefix any plan that beats the incumbent).
//!
//! Cancellation and deadlines keep working mid-layer: every worker ticks
//! the shared [`Budget`] (atomic interior) and unwinds with
//! [`BudgetExceeded`]; `std::thread::scope` joins every worker before the
//! error surfaces, so no threads outlive the call.

use crate::Optimum;
use aqo_bignum::LogNum;
use aqo_core::budget::{Budget, BudgetExceeded};
use aqo_core::parallel::{par_chunks_zip, resolve_threads};
use aqo_core::qon::QoNInstance;
use aqo_core::{CostScalar, JoinSequence};

/// Hard cap on `n`, same as the sequential DP (a `2^n` table is allocated).
pub const MAX_N: usize = crate::dp::MAX_N;

/// Safety margin, in bits, added to the exact incumbent's log₂ cost when
/// phase B prunes on phase-A estimates. Accumulated `f64` log-domain error
/// over a DP path is below `n · 2⁻⁴⁰` bits for `n ≤ MAX_N` — more than
/// nine orders of magnitude smaller than this margin — so no subset on an
/// optimal path is ever pruned.
pub const PRUNE_MARGIN_BITS: f64 = 0.5;

/// Knobs for the engine.
#[derive(Clone, Copy, Debug)]
pub struct DpOptions {
    /// Whether sequences with cartesian products are admissible.
    pub allow_cartesian: bool,
    /// Worker threads; `0` means one per available hardware thread.
    pub threads: usize,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions { allow_cartesian: true, threads: 0 }
    }
}

/// All `2^n − 1` nonempty subset masks grouped by popcount ("layer"),
/// ascending within each layer.
struct Layers {
    masks: Vec<u32>,
    offsets: Vec<usize>,
}

impl Layers {
    fn build(n: usize) -> Layers {
        let full = (1usize << n) - 1;
        let mut counts = vec![0usize; n + 1];
        for m in 1..=full {
            counts[m.count_ones() as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 2];
        for k in 1..=n {
            offsets[k + 1] = offsets[k] + counts[k];
        }
        let mut masks = vec![0u32; full];
        let mut cursor: Vec<usize> = offsets[..=n].to_vec();
        for m in 1..=full {
            let k = m.count_ones() as usize;
            masks[cursor[k]] = m as u32;
            cursor[k] += 1;
        }
        Layers { masks, offsets }
    }

    fn layer(&self, k: usize) -> &[u32] {
        &self.masks[self.offsets[k]..self.offsets[k + 1]]
    }

    fn widest_layer(&self) -> usize {
        (1..self.offsets.len() - 1)
            .map(|k| self.offsets[k + 1] - self.offsets[k])
            .max()
            .unwrap_or(0)
    }
}

/// Precomputed log-domain view of an instance: neighbour bitmasks and the
/// `t`, `w*`, `s` scalars converted to [`LogNum`] once, so the phase-A hot
/// loop allocates nothing and touches no big numbers.
struct LogView {
    nbr: Vec<u32>,
    tlog: Vec<LogNum>,
    /// `w*(j,k)` row-major; diagonal entries are `+inf` (never selected).
    wlog: Vec<LogNum>,
    /// Selectivities row-major; `1` off the query graph.
    slog: Vec<LogNum>,
}

impl LogView {
    fn build(inst: &QoNInstance) -> LogView {
        let n = inst.n();
        let mut nbr = vec![0u32; n];
        for (j, b) in nbr.iter_mut().enumerate() {
            for k in inst.graph().neighbors(j).iter() {
                *b |= 1 << k;
            }
        }
        let tlog: Vec<LogNum> =
            inst.sizes().iter().map(<LogNum as CostScalar>::from_count).collect();
        let mut wlog = vec![LogNum::INFINITY; n * n];
        let mut slog = vec![LogNum::ONE; n * n];
        for j in 0..n {
            for k in 0..n {
                if j == k {
                    continue;
                }
                wlog[j * n + k] = <LogNum as CostScalar>::from_count(&inst.w(j, k));
                if inst.graph().has_edge(j, k) {
                    slog[j * n + k] =
                        <LogNum as CostScalar>::from_ratio(&inst.selectivity().get(j, k));
                }
            }
        }
        LogView { nbr, tlog, wlog, slog }
    }
}

/// Phase-A output: per-subset log-domain cost estimates (`+inf` =
/// unreachable) and the winning predecessor per subset.
struct LogDp {
    dp: Vec<LogNum>,
    parent: Vec<u8>,
}

impl LogDp {
    fn reconstruct(&self, n: usize) -> Option<JoinSequence> {
        let full = (1usize << n) - 1;
        if self.dp[full].log2() == f64::INFINITY {
            return None;
        }
        let mut order = Vec::with_capacity(n);
        let mut mask = full;
        while mask.count_ones() > 1 {
            let j = self.parent[mask] as usize;
            order.push(j);
            mask &= !(1 << j);
        }
        order.push(mask.trailing_zeros() as usize);
        order.reverse();
        Some(JoinSequence::new(order))
    }
}

#[inline]
fn unreached(v: LogNum) -> bool {
    v.log2() == f64::INFINITY
}

/// Phase A: the full subset DP in log domain, layer-parallel, with the
/// incremental min-weight-into-prefix table.
fn log_phase(
    inst: &QoNInstance,
    layers: &Layers,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
) -> Result<LogDp, BudgetExceeded> {
    let _span = aqo_obs::span("engine.log_phase");
    let n = inst.n();
    let full = (1usize << n) - 1;
    let view = LogView::build(inst);
    let widest = layers.widest_layer();

    // Charge every table this phase allocates — the shared 2^n arrays AND
    // the per-layer worker scratch (result buffer + two min-weight table
    // generations) — before allocating anything.
    let scratch_bytes = widest * std::mem::size_of::<(LogNum, LogNum, u8)>()
        + 2 * widest * n * std::mem::size_of::<LogNum>();
    let table_bytes = (full + 1) * (2 * std::mem::size_of::<LogNum>() + 1 + 4)
        + layers.masks.len() * 4
        + (2 * n * n + n) * std::mem::size_of::<LogNum>();
    budget.charge_memory((table_bytes + scratch_bytes) as u64)?;
    budget.checkpoint()?;

    let mut dp = vec![LogNum::INFINITY; full + 1];
    let mut nlog = vec![LogNum::ZERO; full + 1];
    let mut parent = vec![u8::MAX; full + 1];
    // Layer 1 + its min-weight rows: M[{v}][j] = w*(j, v).
    let mut m_prev: Vec<LogNum> = vec![LogNum::INFINITY; n * n];
    for v in 0..n {
        dp[1 << v] = LogNum::ZERO;
        nlog[1 << v] = view.tlog[v];
        for j in 0..n {
            m_prev[v * n + j] = view.wlog[j * n + v];
        }
    }
    let mut m_cur: Vec<LogNum> = Vec::new();
    let mut results: Vec<(LogNum, LogNum, u8)> = Vec::new();
    // Direct mask → index-within-its-layer table: replaces a binary search
    // per predecessor in the hot loop with one array read. Refilled for the
    // new "previous" layer between layers (one pass over 2^n total).
    let mut pos = vec![0u32; full + 1];
    for (i, &m) in layers.layer(1).iter().enumerate() {
        pos[m as usize] = i as u32;
    }

    for k in 2..=n {
        let targets = layers.layer(k);
        results.clear();
        results.resize(targets.len(), (LogNum::INFINITY, LogNum::ZERO, u8::MAX));
        m_cur.clear();
        m_cur.resize(targets.len() * n, LogNum::INFINITY);

        par_layer(threads, targets, &mut results, &mut m_cur, n, |ts, res, rows| {
            for (i, &tm) in ts.iter().enumerate() {
                budget.tick_n(k as u64)?;
                let t = tm as usize;
                let lb = tm.trailing_zeros() as usize;
                let s0 = t & (t - 1);
                // Min-weight row for T from the canonical parent T∖{lowest}.
                let p0 = pos[s0] as usize * n;
                let row = &mut rows[i * n..(i + 1) * n];
                for (j, r) in row.iter_mut().enumerate() {
                    *r = m_prev[p0 + j].min(view.wlog[j * n + lb]);
                }
                // N(T), order-invariant, from the same canonical parent.
                let mut nl = nlog[s0] * view.tlog[lb];
                let mut bits = view.nbr[lb] & s0 as u32;
                while bits != 0 {
                    let kk = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    nl = nl * view.slog[lb * n + kk];
                }
                // Relax over every last-joined relation j ∈ T.
                let mut best = LogNum::INFINITY;
                let mut bj = u8::MAX;
                let mut tb = tm;
                while tb != 0 {
                    let j = tb.trailing_zeros() as usize;
                    tb &= tb - 1;
                    let s = t & !(1 << j);
                    if unreached(dp[s]) {
                        continue;
                    }
                    if !allow_cartesian && view.nbr[j] & s as u32 == 0 {
                        continue;
                    }
                    let wmin = m_prev[pos[s] as usize * n + j];
                    let cand = dp[s] + nlog[s] * wmin;
                    if cand < best {
                        best = cand;
                        bj = j as u8;
                    }
                }
                res[i] = (best, nl, bj);
            }
            Ok(())
        })?;

        for (i, &tm) in targets.iter().enumerate() {
            let (c, nl, pj) = results[i];
            dp[tm as usize] = c;
            nlog[tm as usize] = nl;
            parent[tm as usize] = pj;
            pos[tm as usize] = i as u32;
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        // Layer stats are pure functions of the layer geometry, recorded
        // once per layer on the coordinating thread — deterministic for
        // every thread count, zero cost inside the worker hot loop.
        if aqo_obs::enabled() {
            let width = targets.len();
            aqo_obs::counter_handle!("optimizer.engine.subsets_expanded").add(width as u64);
            aqo_obs::counter_handle!("optimizer.engine.transitions").add((width * k) as u64);
            let chunk = width.div_ceil(threads.max(1));
            let chunks = if chunk >= width { 1 } else { width.div_ceil(chunk) };
            aqo_obs::journal::event(
                "dp_layer",
                vec![
                    ("phase", "log".into()),
                    ("k", k.into()),
                    ("width", width.into()),
                    ("chunks", chunks.into()),
                ],
            );
        }
    }
    Ok(LogDp { dp, parent })
}

/// Runs `f(targets_chunk, results_chunk, mrows_chunk)` over aligned chunks
/// of a layer on scoped workers; `mrows` carries `n` entries per target.
fn par_layer<E: Send>(
    threads: usize,
    targets: &[u32],
    results: &mut [(LogNum, LogNum, u8)],
    mrows: &mut [LogNum],
    n: usize,
    f: impl Fn(&[u32], &mut [(LogNum, LogNum, u8)], &mut [LogNum]) -> Result<(), E> + Sync,
) -> Result<(), E> {
    if targets.is_empty() {
        return Ok(());
    }
    let chunk = targets.len().div_ceil(threads.max(1));
    if chunk >= targets.len() {
        return f(targets, results, mrows);
    }
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        for ((tc, rc), mc) in
            targets.chunks(chunk).zip(results.chunks_mut(chunk)).zip(mrows.chunks_mut(chunk * n))
        {
            handles.push(scope.spawn(move || f(tc, rc, mc)));
        }
        let mut result = Ok(());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
        result
    })
}

/// Precomputed exact-scalar view: `t_j`, `w*(j,k)`, and edge selectivities
/// embedded into `S` once, so phase B's loop clones nothing.
struct ExactView<S> {
    ts: Vec<S>,
    wexs: Vec<S>,
    sels: Vec<S>,
}

impl<S: CostScalar> ExactView<S> {
    fn build(inst: &QoNInstance) -> ExactView<S> {
        let n = inst.n();
        let ts: Vec<S> = inst.sizes().iter().map(S::from_count).collect();
        let mut wexs: Vec<S> = Vec::with_capacity(n * n);
        let mut sels: Vec<S> = Vec::with_capacity(n * n);
        for (j, tj) in ts.iter().enumerate() {
            for k in 0..n {
                if j == k {
                    wexs.push(tj.clone()); // placeholder, never selected
                    sels.push(S::one());
                    continue;
                }
                wexs.push(S::from_count(&inst.w(j, k)));
                sels.push(if inst.graph().has_edge(j, k) {
                    S::from_ratio(&inst.selectivity().get(j, k))
                } else {
                    S::one()
                });
            }
        }
        ExactView { ts, wexs, sels }
    }
}

/// Phase B: the exact DP, layer-parallel, skipping every subset whose
/// phase-A estimate exceeds `bound_log2`.
#[allow(clippy::too_many_arguments)]
fn exact_phase<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    layers: &Layers,
    allow_cartesian: bool,
    threads: usize,
    budget: &Budget,
    prune: Option<(&[LogNum], f64)>,
    nbr: &[u32],
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("engine.exact_phase");
    let n = inst.n();
    let full = (1usize << n) - 1;
    let widest = layers.widest_layer();
    let entry = std::mem::size_of::<Option<S>>();
    let table_bytes = (full + 1) * (2 * entry + 1)
        + widest * std::mem::size_of::<Option<(S, S, u8)>>()
        + (2 * n * n + n) * entry;
    budget.charge_memory(table_bytes as u64)?;
    budget.checkpoint()?;

    let view = ExactView::<S>::build(inst);
    let mut dp: Vec<Option<S>> = vec![None; full + 1];
    let mut nsize: Vec<Option<S>> = vec![None; full + 1];
    let mut parent = vec![u8::MAX; full + 1];
    for v in 0..n {
        dp[1 << v] = Some(S::zero());
        nsize[1 << v] = Some(S::from_count(&inst.sizes()[v]));
    }
    let mut results: Vec<Option<(S, S, u8)>> = Vec::new();

    for k in 2..=n {
        let targets = layers.layer(k);
        results.clear();
        results.resize(targets.len(), None);

        par_chunks_zip(threads, targets, &mut results, |_, ts, res| {
            for (i, &tm) in ts.iter().enumerate() {
                let t = tm as usize;
                if let Some((est, bound)) = prune {
                    if est[t].log2() > bound {
                        budget.tick_n(1)?;
                        continue; // provably off every improving path
                    }
                }
                budget.tick_n(k as u64)?;
                let mut best: Option<(S, u8)> = None;
                let mut tb = tm;
                while tb != 0 {
                    let j = tb.trailing_zeros() as usize;
                    tb &= tb - 1;
                    let s = t & !(1 << j);
                    let Some(dps) = dp[s].as_ref() else { continue };
                    if !allow_cartesian && nbr[j] & s as u32 == 0 {
                        continue;
                    }
                    let ns = nsize[s].as_ref().expect("N(S) set with dp");
                    // min_{k ∈ S} w*(j,k), by reference: zero clones.
                    let mut sb = s as u32;
                    let k0 = sb.trailing_zeros() as usize;
                    sb &= sb - 1;
                    let mut wmin = &view.wexs[j * n + k0];
                    while sb != 0 {
                        let kk = sb.trailing_zeros() as usize;
                        sb &= sb - 1;
                        let w = &view.wexs[j * n + kk];
                        if w < wmin {
                            wmin = w;
                        }
                    }
                    let cand = dps.add(&ns.mul(wmin));
                    if best.as_ref().is_none_or(|(b, _)| cand < *b) {
                        best = Some((cand, j as u8));
                    }
                }
                res[i] = best.map(|(cost, j)| {
                    // N(T) once per subset, from the winning parent only.
                    let s = t & !(1 << j as usize);
                    let mut nn =
                        nsize[s].as_ref().expect("winner has N(S)").mul(&view.ts[j as usize]);
                    let mut bits = nbr[j as usize] & s as u32;
                    while bits != 0 {
                        let kk = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        nn = nn.mul(&view.sels[j as usize * n + kk]);
                    }
                    (cost, nn, j)
                });
            }
            Ok(())
        })?;

        for (i, &tm) in targets.iter().enumerate() {
            if let Some((c, nn, pj)) = results[i].take() {
                dp[tm as usize] = Some(c);
                nsize[tm as usize] = Some(nn);
                parent[tm as usize] = pj;
            }
        }
        // Prune/recost counts are a pure function of the phase-A estimates
        // and the bound — replayed here on the coordinating thread so the
        // totals are deterministic for every thread count.
        if aqo_obs::enabled() {
            let (mut pruned, mut recosted) = (0u64, 0u64);
            match prune {
                Some((est, bound)) => {
                    for &tm in targets {
                        if est[tm as usize].log2() > bound {
                            pruned += 1;
                        } else {
                            recosted += 1;
                        }
                    }
                }
                None => recosted = targets.len() as u64,
            }
            aqo_obs::counter_handle!("optimizer.engine.exact_recosts").add(recosted);
            aqo_obs::counter_handle!("optimizer.engine.pruned").add(pruned);
            aqo_obs::journal::event(
                "dp_layer",
                vec![
                    ("phase", "exact".into()),
                    ("k", k.into()),
                    ("width", targets.len().into()),
                    ("recosted", recosted.into()),
                    ("pruned", pruned.into()),
                ],
            );
        }
    }

    let Some(cost) = dp[full].take() else { return Ok(None) };
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask.count_ones() > 1 {
        let j = parent[mask] as usize;
        order.push(j);
        mask &= !(1 << j);
    }
    order.push(mask.trailing_zeros() as usize);
    order.reverse();
    Ok(Some(Optimum { sequence: JoinSequence::new(order), cost }))
}

/// Phase A alone: the layer-parallel log-domain DP. Fast and allocation
/// free in the hot loop, but subject to `f64` rounding like any
/// [`LogNum`] optimizer; use [`optimize_two_phase`] when exact optimality
/// must be certified.
pub fn optimize_log_parallel(
    inst: &QoNInstance,
    opts: &DpOptions,
    budget: &Budget,
) -> Result<Option<Optimum<LogNum>>, BudgetExceeded> {
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "engine DP is for n in 1..={MAX_N}");
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: LogNum::ZERO }));
    }
    let threads = resolve_threads(opts.threads);
    let layers = Layers::build(n);
    let log = log_phase(inst, &layers, opts.allow_cartesian, threads, budget)?;
    let full = (1usize << n) - 1;
    Ok(log
        .reconstruct(n)
        .map(|sequence| Optimum { sequence, cost: log.dp[full] }))
}

/// The two-phase engine: log-domain phase A for a candidate and per-subset
/// pruning estimates, exact phase B (in the caller's scalar `S`) that
/// verifies or repairs the candidate and returns the certified optimum.
///
/// Bit-identical to [`crate::dp::optimize_with_budget`] in returned cost
/// for every thread count; the plan is a valid sequence achieving that
/// cost (tie-breaking may choose a different equal-cost plan).
pub fn optimize_two_phase<S: CostScalar + Send + Sync>(
    inst: &QoNInstance,
    opts: &DpOptions,
    budget: &Budget,
) -> Result<Option<Optimum<S>>, BudgetExceeded> {
    let _span = aqo_obs::span("engine.two_phase");
    let n = inst.n();
    assert!((1..=MAX_N).contains(&n), "engine DP is for n in 1..={MAX_N}");
    if n == 1 {
        return Ok(Some(Optimum { sequence: JoinSequence::identity(1), cost: S::zero() }));
    }
    aqo_obs::counter_handle!("optimizer.engine.runs").inc();
    let threads = resolve_threads(opts.threads);
    let layers = Layers::build(n);
    let log = log_phase(inst, &layers, opts.allow_cartesian, threads, budget)?;
    let Some(candidate) = log.reconstruct(n) else {
        // Unreachable full set is a combinatorial fact (disconnected graph
        // under the no-cartesian rule), identical in both scalars.
        return Ok(None);
    };
    let exact_candidate: S = inst.total_cost(&candidate);
    let bound = exact_candidate.log2() + PRUNE_MARGIN_BITS;
    aqo_obs::journal::event("engine_bound", vec![("bound_log2", bound.into())]);
    let nbr: Vec<u32> = (0..n)
        .map(|j| inst.graph().neighbors(j).iter().fold(0u32, |m, k| m | 1 << k))
        .collect();
    let opt = exact_phase::<S>(
        inst,
        &layers,
        opts.allow_cartesian,
        threads,
        budget,
        Some((&log.dp, bound)),
        &nbr,
    )?;
    debug_assert!(opt.is_some(), "candidate path is never pruned");
    Ok(opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp;
    use aqo_bignum::{BigInt, BigRational, BigUint};
    use aqo_core::{AccessCostMatrix, SelectivityMatrix};
    use aqo_graph::Graph;

    fn random_instance(seed: u64, n: usize, extra_edges: usize) -> QoNInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge((next() % v as u64) as usize, v);
        }
        for _ in 0..extra_edges {
            let u = (next() % n as u64) as usize;
            let v = (next() % n as u64) as usize;
            if u != v {
                g.add_edge(u, v);
            }
        }
        let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(2 + next() % 40)).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(2 + next() % 9));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        QoNInstance::new(g, sizes, s, w)
    }

    #[test]
    fn two_phase_matches_sequential_dp_exactly() {
        for seed in 0..10u64 {
            let inst = random_instance(seed, 7, 7);
            for allow in [true, false] {
                let seq = dp::optimize::<BigRational>(&inst, allow);
                for threads in [1usize, 2, 4] {
                    let opts = DpOptions { allow_cartesian: allow, threads };
                    let par = optimize_two_phase::<BigRational>(
                        &inst,
                        &opts,
                        &Budget::unlimited(),
                    )
                    .unwrap();
                    match (&seq, &par) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.cost, b.cost, "seed {seed} threads {threads}");
                            let recost: BigRational = inst.total_cost(&b.sequence);
                            assert_eq!(recost, b.cost);
                            if !allow {
                                assert!(!inst.has_cartesian_product(&b.sequence));
                            }
                        }
                        (None, None) => {}
                        other => panic!("feasibility mismatch: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn log_parallel_deterministic_and_close_to_sequential_log_dp() {
        for seed in [3u64, 11, 29] {
            let inst = random_instance(seed, 8, 6);
            let seq = dp::optimize::<LogNum>(&inst, true).unwrap();
            let mut baseline: Option<(u64, Vec<usize>)> = None;
            for threads in [1usize, 2, 3, 7] {
                let opts = DpOptions { allow_cartesian: true, threads };
                let par =
                    optimize_log_parallel(&inst, &opts, &Budget::unlimited()).unwrap().unwrap();
                // The engine evaluates the same canonical recurrence for any
                // thread count: bit-identical cost AND identical plan.
                let fp = (par.cost.log2().to_bits(), par.sequence.order().to_vec());
                match &baseline {
                    None => baseline = Some(fp),
                    Some(b) => assert_eq!(*b, fp, "seed {seed} threads {threads}"),
                }
                // Against the sequential push-style log DP the association
                // order of the f64 products differs, so agreement is to
                // float precision, not to the bit.
                assert!(
                    (par.cost.log2() - seq.cost.log2()).abs() < 1e-9,
                    "seed {seed}: engine {} vs dp {}",
                    par.cost.log2(),
                    seq.cost.log2()
                );
            }
        }
    }

    #[test]
    fn disconnected_instances() {
        let g = Graph::new(4);
        let inst = QoNInstance::new(
            g,
            vec![BigUint::from(3u64); 4],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        let opts = DpOptions { allow_cartesian: false, threads: 2 };
        assert!(optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .unwrap()
            .is_none());
        let opts = DpOptions { allow_cartesian: true, threads: 2 };
        let opt = optimize_two_phase::<BigRational>(&inst, &opts, &Budget::unlimited())
            .unwrap()
            .unwrap();
        let seq = dp::optimize::<BigRational>(&inst, true).unwrap();
        assert_eq!(opt.cost, seq.cost);
    }

    #[test]
    fn single_vertex() {
        let inst = QoNInstance::new(
            Graph::new(1),
            vec![BigUint::from(9u64)],
            SelectivityMatrix::new(),
            AccessCostMatrix::new(),
        );
        let opt = optimize_two_phase::<BigRational>(
            &inst,
            &DpOptions::default(),
            &Budget::unlimited(),
        )
        .unwrap()
        .unwrap();
        assert!(opt.cost.is_zero());
    }

    #[test]
    fn expansion_cap_trips_in_parallel_layers() {
        let inst = random_instance(5, 9, 6);
        let budget = Budget::unlimited().with_max_expansions(40);
        let opts = DpOptions { allow_cartesian: true, threads: 4 };
        let err = optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Expansions);
    }

    #[test]
    fn memory_cap_counts_worker_scratch() {
        let inst = random_instance(6, 12, 8);
        // The shared 2^n tables alone would fit; the scratch must push the
        // charge over this cap.
        let layers = Layers::build(12);
        let shared = (4096 + 1) * (2 * std::mem::size_of::<LogNum>() + 1);
        let scratch = layers.widest_layer() * std::mem::size_of::<(LogNum, LogNum, u8)>();
        assert!(scratch > 0);
        let budget = Budget::unlimited().with_max_memory_bytes((shared + scratch / 2) as u64);
        let opts = DpOptions { allow_cartesian: true, threads: 2 };
        let err = optimize_two_phase::<BigRational>(&inst, &opts, &budget).unwrap_err();
        assert_eq!(err.kind, aqo_core::budget::BudgetKind::Memory);
        assert_eq!(err.expansions, 0, "charged before any expansion");
    }

    #[test]
    fn layers_cover_all_masks_in_order() {
        let l = Layers::build(5);
        assert_eq!(l.masks.len(), 31);
        let mut seen = std::collections::HashSet::new();
        for k in 1..=5usize {
            let layer = l.layer(k);
            assert!(layer.windows(2).all(|w| w[0] < w[1]));
            for &m in layer {
                assert_eq!(m.count_ones() as usize, k);
                assert!(seen.insert(m));
            }
        }
        assert_eq!(seen.len(), 31);
        assert_eq!(l.widest_layer(), 10);
    }
}
