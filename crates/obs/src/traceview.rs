//! Trace reconstruction from JSONL journals.
//!
//! [`check`] validates the tracing invariants of a journal (every
//! `span_start` has a closing `span`, ids are unique, no event references
//! a parent span that never opened), and [`render`] reassembles the
//! per-request span trees — with total/self time, per-span event counts,
//! and the critical path marked — from the same text. Both operate on
//! the serialized journal alone, so they work on files from any process
//! (the CLI's `aqo trace-check` / `aqo trace view`).
//!
//! Untraced journals (schema v1, or runs without a trace context) have
//! no `span_start` events and no `trace_id` fields; [`check`] accepts
//! them trivially and [`render`] reports that there is nothing to show.

use crate::json;
use std::collections::BTreeMap;

/// One journal line's trace-relevant projection.
struct Ev {
    seq: u64,
    etype: String,
    name: String,
    span_id: u64,
    trace_id: u64,
    parent: u64,
    /// Span duration (`dur_us` field of traced `span` end events).
    dur_us: u64,
}

fn num(v: &json::JsonValue, key: &str) -> u64 {
    v.get(key).and_then(json::JsonValue::as_num).map(|n| n as u64).unwrap_or(0)
}

fn parse_events(text: &str) -> Result<Vec<Ev>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let etype = v
            .get("type")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?
            .to_string();
        out.push(Ev {
            seq: num(&v, "seq"),
            etype,
            name: v.get("name").and_then(json::JsonValue::as_str).unwrap_or("").to_string(),
            span_id: num(&v, "span_id"),
            trace_id: num(&v, "trace_id"),
            parent: num(&v, "parent_span_id"),
            dur_us: num(&v, "dur_us"),
        });
    }
    // Journals are written in seq order, but sort defensively so a
    // concatenation of two journals still checks per its merged order.
    out.sort_by_key(|e| e.seq);
    Ok(out)
}

/// Summary returned by a successful [`check`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Distinct trace ids seen.
    pub traces: usize,
    /// Traced spans (matched `span_start`/`span` pairs).
    pub spans: usize,
    /// Journal events carrying a trace id.
    pub traced_events: usize,
}

/// Validates trace nesting over a serialized journal: span ids unique,
/// every `span_start` matched by a closing `span` in the same trace,
/// and every traced event's `parent_span_id` either 0 or a span that
/// opened earlier in the journal. Journals without tracing pass with an
/// all-zero report.
pub fn check(text: &str) -> Result<CheckReport, String> {
    let events = parse_events(text)?;
    // span_id -> (trace_id, closed)
    let mut spans: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
    let mut traces: BTreeMap<u64, ()> = BTreeMap::new();
    let mut traced_events = 0usize;
    for e in &events {
        if e.trace_id == 0 {
            continue;
        }
        traced_events += 1;
        traces.insert(e.trace_id, ());
        if e.parent != 0 {
            match spans.get(&e.parent) {
                None => {
                    return Err(format!(
                        "seq {}: {} references parent span {} that never opened (orphan parent)",
                        e.seq, e.etype, e.parent
                    ));
                }
                Some((tid, _)) if *tid != e.trace_id => {
                    return Err(format!(
                        "seq {}: {} in trace {} has parent span {} from trace {tid}",
                        e.seq, e.etype, e.trace_id, e.parent
                    ));
                }
                Some(_) => {}
            }
        }
        match e.etype.as_str() {
            "span_start" => {
                if e.span_id == 0 {
                    return Err(format!("seq {}: span_start without span_id", e.seq));
                }
                if spans.insert(e.span_id, (e.trace_id, false)).is_some() {
                    return Err(format!("seq {}: duplicate span_id {}", e.seq, e.span_id));
                }
            }
            "span" if e.span_id != 0 => match spans.get_mut(&e.span_id) {
                None => {
                    return Err(format!(
                        "seq {}: span end for id {} without a span_start",
                        e.seq, e.span_id
                    ));
                }
                Some((_, closed @ false)) => *closed = true,
                Some((_, true)) => {
                    return Err(format!("seq {}: span id {} closed twice", e.seq, e.span_id));
                }
            },
            _ => {}
        }
    }
    let open: Vec<u64> =
        spans.iter().filter(|(_, (_, closed))| !closed).map(|(id, _)| *id).collect();
    if !open.is_empty() {
        return Err(format!("unbalanced spans: ids {open:?} opened but never closed"));
    }
    Ok(CheckReport { traces: traces.len(), spans: spans.len(), traced_events })
}

struct Node {
    name: String,
    parent: u64,
    start_seq: u64,
    us: u64,
    closed: bool,
    events: usize,
    children: Vec<u64>,
}

/// Renders the per-trace span trees of a serialized journal: one block
/// per trace id, each span with total time, self time (total minus
/// children, saturating — parallel children can overlap), the count of
/// non-span events parented to it, and the critical path (greedy
/// max-total descent) marked with `*`. Lenient about imbalance so it can
/// inspect journals [`check`] would reject; returns an explanatory line
/// when the journal carries no traces at all.
pub fn render(text: &str) -> Result<String, String> {
    let events = parse_events(text)?;
    // trace_id -> span_id -> node; plus per-trace root event counts.
    let mut traces: BTreeMap<u64, BTreeMap<u64, Node>> = BTreeMap::new();
    let mut root_events: BTreeMap<u64, usize> = BTreeMap::new();
    for e in &events {
        if e.trace_id == 0 {
            continue;
        }
        let spans = traces.entry(e.trace_id).or_default();
        match e.etype.as_str() {
            "span_start" if e.span_id != 0 => {
                spans.insert(
                    e.span_id,
                    Node {
                        name: e.name.clone(),
                        parent: e.parent,
                        start_seq: e.seq,
                        us: 0,
                        closed: false,
                        events: 0,
                        children: Vec::new(),
                    },
                );
            }
            "span" if e.span_id != 0 => {
                if let Some(n) = spans.get_mut(&e.span_id) {
                    n.us = e.dur_us;
                    n.closed = true;
                }
            }
            _ => {
                if e.parent != 0 {
                    if let Some(n) = spans.get_mut(&e.parent) {
                        n.events += 1;
                    }
                } else {
                    *root_events.entry(e.trace_id).or_default() += 1;
                }
            }
        }
    }
    if traces.is_empty() {
        return Ok("no traced spans in journal (schema v1 or tracing inactive)\n".to_string());
    }
    let mut out = String::new();
    for (trace_id, mut spans) in traces {
        // Wire up children; unknown parents (e.g. a span inherited from
        // a journal cut) render as roots.
        let ids: Vec<u64> = spans.keys().copied().collect();
        let start_seqs: BTreeMap<u64, u64> =
            spans.iter().map(|(id, n)| (*id, n.start_seq)).collect();
        let mut roots = Vec::new();
        for id in &ids {
            let parent = spans[id].parent;
            if parent != 0 && spans.contains_key(&parent) {
                // analyze:allow(no-unwrap-in-lib) -- key membership
                // checked on the line above; BTreeMap cannot lose it.
                spans.get_mut(&parent).unwrap().children.push(*id);
            } else {
                roots.push(*id);
            }
        }
        for n in spans.values_mut() {
            n.children.sort_by_key(|id| start_seqs.get(id).copied().unwrap_or(u64::MAX));
        }
        roots.sort_by_key(|id| spans[id].start_seq);
        let nevents: usize = spans.values().map(|n| n.events).sum::<usize>()
            + root_events.get(&trace_id).copied().unwrap_or(0);
        out.push_str(&format!(
            "trace {trace_id} ({} span{}, {} event{})\n",
            spans.len(),
            if spans.len() == 1 { "" } else { "s" },
            nevents,
            if nevents == 1 { "" } else { "s" },
        ));
        // Critical path: greedy descent by max total time from the
        // longest root.
        let mut critical = Vec::new();
        if let Some(&start) = roots.iter().max_by_key(|id| spans[id].us) {
            let mut cur = start;
            loop {
                critical.push(cur);
                match spans[&cur].children.iter().max_by_key(|id| spans[id].us) {
                    Some(&next) => cur = next,
                    None => break,
                }
            }
        }
        for root in &roots {
            render_node(&spans, *root, 1, &critical, &mut out);
        }
    }
    Ok(out)
}

fn render_node(spans: &BTreeMap<u64, Node>, id: u64, depth: usize, critical: &[u64], out: &mut String) {
    let n = &spans[&id];
    let child_us: u64 = n.children.iter().map(|c| spans[c].us).sum();
    let self_us = n.us.saturating_sub(child_us);
    let marker = if critical.contains(&id) { "*" } else { "-" };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{marker} {:<28} total={}us self={}us",
        if n.name.is_empty() { "?" } else { &n.name },
        n.us,
        self_us
    ));
    if n.events > 0 {
        out.push_str(&format!(" events={}", n.events));
    }
    if !n.closed {
        out.push_str(" (open)");
    }
    out.push('\n');
    for c in &n.children {
        render_node(spans, *c, depth + 1, critical, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"seq\": 0, \"us\": 1, \"type\": \"span_start\", \"name\": \"serve.request\", \"span_id\": 1, \"trace_id\": 7, \"parent_span_id\": 0}\n",
        "{\"seq\": 1, \"us\": 2, \"type\": \"span_start\", \"name\": \"tier.dp\", \"span_id\": 2, \"trace_id\": 7, \"parent_span_id\": 1}\n",
        "{\"seq\": 2, \"us\": 3, \"type\": \"tier_start\", \"tier\": \"dp\", \"trace_id\": 7, \"parent_span_id\": 2}\n",
        "{\"seq\": 3, \"us\": 9, \"type\": \"span\", \"name\": \"tier.dp\", \"span_id\": 2, \"dur_us\": 7, \"trace_id\": 7, \"parent_span_id\": 1}\n",
        "{\"seq\": 4, \"us\": 11, \"type\": \"span\", \"name\": \"serve.request\", \"span_id\": 1, \"dur_us\": 10, \"trace_id\": 7, \"parent_span_id\": 0}\n",
    );

    #[test]
    fn check_accepts_balanced_trace() {
        let r = check(GOOD).expect("balanced journal");
        assert_eq!(r, CheckReport { traces: 1, spans: 2, traced_events: 5 });
    }

    #[test]
    fn check_accepts_untraced_journal() {
        let v1 = "{\"seq\": 0, \"us\": 1, \"type\": \"span\", \"name\": \"x\", \"us\": 3}\n";
        let r = check(v1).expect("v1 journal still parses");
        assert_eq!(r, CheckReport::default());
    }

    #[test]
    fn check_rejects_unbalanced_and_orphans() {
        let unbalanced = "{\"seq\": 0, \"us\": 1, \"type\": \"span_start\", \"name\": \"a\", \"span_id\": 1, \"trace_id\": 3, \"parent_span_id\": 0}\n";
        assert!(check(unbalanced).unwrap_err().contains("never closed"));
        let orphan = "{\"seq\": 0, \"us\": 1, \"type\": \"tier_start\", \"trace_id\": 3, \"parent_span_id\": 9}\n";
        assert!(check(orphan).unwrap_err().contains("orphan parent"));
    }

    #[test]
    fn render_nests_and_marks_critical_path() {
        let tree = render(GOOD).expect("renders");
        assert!(tree.contains("trace 7 (2 spans, 1 event)"), "{tree}");
        let serve_line = tree.lines().find(|l| l.contains("serve.request")).unwrap();
        let dp_line = tree.lines().find(|l| l.contains("tier.dp")).unwrap();
        assert!(serve_line.contains("total=10us self=3us"), "{tree}");
        assert!(dp_line.contains("total=7us self=7us"), "{tree}");
        assert!(dp_line.contains("events=1"), "{tree}");
        assert!(serve_line.trim_start().starts_with('*'), "{tree}");
        // Child is indented deeper than the parent.
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(dp_line) > indent(serve_line), "{tree}");
    }
}
