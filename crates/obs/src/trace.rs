//! Request-scoped trace contexts.
//!
//! A *trace* groups every journal event and span emitted on behalf of one
//! logical request. The context is a per-thread stack: [`install`] binds a
//! trace id (plus the parent span inherited from another thread) to the
//! current thread, and [`crate::span`] pushes/pops span ids on it. While a
//! context is active, [`crate::journal::event`] stamps `trace_id` and
//! `parent_span_id` onto every event automatically — instrumentation
//! sites don't change at all.
//!
//! Id scheme: trace ids and span ids are minted from two process-global
//! monotone counters starting at 1; **0 is reserved** and means "no
//! trace" / "no parent" everywhere. Ids are unique per process, not
//! globally.
//!
//! Cross-thread propagation is explicit and cheap: capture [`current`] on
//! the spawning thread, move the returned [`TraceHandle`] (it is `Copy`)
//! into the worker, and [`install`] it there. `aqo_core::parallel` does
//! this for every scoped worker it spawns, so fan-out inside a traced
//! request keeps the request's trace id.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

// Both start at 1: id 0 is the reserved "none" value.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

struct Ctx {
    trace_id: u64,
    /// Open span ids, innermost last. The bottom entry may be a span
    /// owned by *another* thread (the inherited parent).
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Mints a fresh trace id (monotone, unique per process, never 0).
pub fn next_trace_id() -> u64 {
    // ordering: uniqueness only; ids carry no payload.
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Mints a fresh span id (monotone, unique per process, never 0).
pub(crate) fn next_span_id() -> u64 {
    // ordering: uniqueness only; ids carry no payload.
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// A portable reference to a position in a trace: the trace id plus the
/// span that should become the parent of whatever runs under it. `Copy`,
/// so it moves into worker closures freely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceHandle {
    trace_id: u64,
    parent_span: u64,
}

impl TraceHandle {
    /// A handle at the root of trace `trace_id` (no parent span).
    pub fn root(trace_id: u64) -> Self {
        TraceHandle { trace_id, parent_span: 0 }
    }

    /// The trace id this handle refers to.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }
}

/// The current thread's trace position, if a context is installed:
/// the trace id plus the innermost open span (the parent any spawned
/// worker should inherit).
pub fn current() -> Option<TraceHandle> {
    CTX.with(|c| {
        c.borrow().as_ref().map(|ctx| TraceHandle {
            trace_id: ctx.trace_id,
            parent_span: ctx.stack.last().copied().unwrap_or(0),
        })
    })
}

/// Installs `handle` as the current thread's trace context; the returned
/// guard restores the previous context (usually none) on drop. Guards
/// nest: installing over an existing context shadows it until drop.
pub fn install(handle: TraceHandle) -> TraceGuard {
    let stack = if handle.parent_span != 0 { vec![handle.parent_span] } else { Vec::new() };
    let prev = CTX.with(|c| {
        c.borrow_mut().replace(Ctx { trace_id: handle.trace_id, stack })
    });
    TraceGuard { prev }
}

/// Restores the previous trace context on drop. Returned by [`install`].
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<Ctx>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("trace_id", &self.trace_id).field("stack", &self.stack).finish()
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// `(trace_id, parent_span_id)` for the current thread, if a context is
/// installed. `parent_span_id` is 0 at the trace root. This is what the
/// journal stamps onto events.
pub(crate) fn current_ids() -> Option<(u64, u64)> {
    CTX.with(|c| {
        c.borrow().as_ref().map(|ctx| (ctx.trace_id, ctx.stack.last().copied().unwrap_or(0)))
    })
}

/// True when a trace context is installed on this thread.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Pushes an open span onto the current context (no-op without one).
pub(crate) fn push_span(span_id: u64) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.stack.push(span_id);
        }
    });
}

/// Pops `span_id` from the current context. Spans are guards so drops
/// normally match the top of the stack; out-of-order drops (possible when
/// a guard is moved) remove the matching entry instead of corrupting the
/// stack, and a missing entry is ignored (the context may have been
/// replaced between push and pop).
pub(crate) fn pop_span(span_id: u64) {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            if ctx.stack.last() == Some(&span_id) {
                ctx.stack.pop();
            } else if let Some(pos) = ctx.stack.iter().rposition(|&s| s == span_id) {
                ctx.stack.remove(pos);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_restore() {
        assert!(current().is_none());
        let tid = next_trace_id();
        {
            let _g = install(TraceHandle::root(tid));
            let h = current().expect("context installed");
            assert_eq!(h.trace_id(), tid);
            assert_eq!(h.parent_span, 0);
        }
        assert!(current().is_none());
    }

    #[test]
    fn handles_propagate_parent_span() {
        let tid = next_trace_id();
        let _g = install(TraceHandle::root(tid));
        push_span(42);
        let h = current().expect("context installed");
        assert_eq!(h.parent_span, 42);
        // Installing the captured handle on "another thread" seeds the
        // stack with the inherited parent.
        let inner = install(h);
        assert_eq!(current_ids(), Some((tid, 42)));
        drop(inner);
        pop_span(42);
        assert_eq!(current_ids(), Some((tid, 0)));
    }

    #[test]
    fn pop_tolerates_out_of_order_drops() {
        let tid = next_trace_id();
        let _g = install(TraceHandle::root(tid));
        push_span(1);
        push_span(2);
        pop_span(1); // moved guard dropped early
        assert_eq!(current_ids(), Some((tid, 2)));
        pop_span(2);
        pop_span(2); // double pop ignored
        assert_eq!(current_ids(), Some((tid, 0)));
    }
}
