//! Structured event journal serializing to JSON Lines.
//!
//! Events are appended by instrumentation sites while collection is
//! [`enabled`](crate::enabled) and drained once at the end of a run (the
//! CLI's `--trace-json`). Appends take a global mutex — every emitting
//! site is *cold* (per tier attempt, per DP layer, per budget trip, per
//! span), never per search node, so contention is irrelevant; the hot
//! loops accumulate into locals and emit one event per run instead.
//!
//! Each event serializes as one JSON object per line with the reserved
//! keys `seq` (global append order), `us` (microseconds since the first
//! event of the process) and `type`, followed by the event's own fields.

use crate::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// A field value in a journal event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized with enough digits to round-trip sanely).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on serialization).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One journal entry.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global append order (gap-free per process, monotone).
    pub seq: u64,
    /// Microseconds since the journal epoch (first use in this process).
    pub us: u64,
    /// Event type (`tier_start`, `span`, `dp_layer`, ...).
    pub etype: &'static str,
    /// Event-specific fields, serialized in order after the reserved keys.
    pub fields: Vec<(&'static str, Value)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn events() -> MutexGuard<'static, Vec<Event>> {
    static EVENTS: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap_or_else(|e| e.into_inner())
}

static SEQ: AtomicU64 = AtomicU64::new(0);

/// Journal capture switch, independent of the metrics flag: a
/// long-running server wants live counters and quantiles
/// ([`crate::set_enabled`] on) without an unbounded in-memory event
/// buffer. Defaults to on, so `set_enabled(true)` alone behaves exactly
/// as before this flag existed.
static CAPTURE: AtomicBool = AtomicBool::new(true);

/// Turns journal event capture on or off (metrics keep collecting either
/// way). On is the default.
pub fn set_capture(on: bool) {
    // ordering: see `crate::set_enabled` — flag toggles carry no
    // dependent data.
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether journal events are being buffered (requires both
/// [`crate::enabled`] and the capture switch).
pub fn capturing() -> bool {
    crate::enabled() && CAPTURE.load(Ordering::Relaxed) // ordering: see `set_capture`
}

/// Appends an event (no-op while collection is disabled or capture is
/// off). While a [`crate::trace`] context is active on this thread, the
/// event is stamped with `trace_id` and `parent_span_id` fields
/// (journal schema v2); without one the line is byte-identical to
/// schema v1.
pub fn event(etype: &'static str, mut fields: Vec<(&'static str, Value)>) {
    if !capturing() {
        return;
    }
    if let Some((trace_id, parent_span_id)) = crate::trace::current_ids() {
        fields.push(("trace_id", Value::U64(trace_id)));
        fields.push(("parent_span_id", Value::U64(parent_span_id)));
    }
    let us = epoch().elapsed().as_micros() as u64;
    let mut events = events();
    // ordering: seq is claimed *under the events lock* so buffer order
    // always agrees with seq order even with concurrent emitters (the
    // lock provides all inter-thread ordering; the atomic only supplies
    // uniqueness). Verified exhaustively in tests/model_journal.rs.
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    events.push(Event { seq, us, etype, fields });
}

/// Removes and returns every buffered event, in append order.
pub fn drain() -> Vec<Event> {
    std::mem::take(&mut *events())
}

/// Clones every buffered event without removing it.
pub fn snapshot_events() -> Vec<Event> {
    events().clone()
}

/// Discards every buffered event.
pub fn clear() {
    events().clear();
}

/// Serializes events as JSON Lines (one object per line, trailing
/// newline).
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&format!("{{\"seq\": {}, \"us\": {}, \"type\": ", e.seq, e.us));
        json::escape_into(&mut out, e.etype);
        for (key, value) in &e.fields {
            out.push_str(", ");
            json::escape_into(&mut out, key);
            out.push_str(": ");
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                // `{v:?}` is Rust's shortest round-trip float form and is
                // valid JSON for all finite values (e.g. `1.5`, `1e300`).
                Value::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
                Value::F64(_) => out.push_str("null"),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(s) => json::escape_into(&mut out, s),
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_through_parser() {
        let events = vec![
            Event {
                seq: 0,
                us: 12,
                etype: "tier_start",
                fields: vec![("tier", Value::from("dp")), ("attempt", Value::from(1u64))],
            },
            Event {
                seq: 1,
                us: 99,
                etype: "weird",
                fields: vec![
                    ("msg", Value::from("a \"quoted\"\nline")),
                    ("x", Value::from(-3i64)),
                    ("f", Value::from(1.5f64)),
                    ("ok", Value::from(true)),
                    ("nan", Value::F64(f64::NAN)),
                ],
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("type").is_some());
        }
        let second = json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(second.get("msg").and_then(json::JsonValue::as_str), Some("a \"quoted\"\nline"));
    }

    #[test]
    fn f64_serialization_round_trips_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 1e300, 5e-324, -123_456_789.123_456_7, 27.0] {
            let events = vec![Event {
                seq: 0,
                us: 0,
                etype: "f",
                fields: vec![("v", Value::from(v))],
            }];
            let text = to_jsonl(&events);
            let parsed = json::parse(text.trim_end()).unwrap();
            let back = parsed.get("v").and_then(json::JsonValue::as_num).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "lossy round-trip for {v}: {text}");
        }
    }
}
