//! Fixed-size time-series rings over the metrics registry.
//!
//! A [`sample_tick`] — driven by the serve sampler thread at
//! `--obs-interval-ms` — walks the registry snapshot and appends one
//! point per live metric to a named 256-slot ring buffer: counters
//! contribute their **delta since the previous tick**, gauges their
//! current level, and histograms their `p50`/`p99` quantiles (as
//! `<name>.p50` / `<name>.p99` series). Rings are bounded, so a server
//! sampling once a second holds the last ~4 minutes at a fixed few KB
//! per metric regardless of uptime.
//!
//! Everything lives behind one mutex, taken once per tick and once per
//! [`series_snapshot`]; there is no per-request cost at all.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Ring capacity: each series keeps the most recent 256 points.
pub const SERIES_SLOTS: usize = 256;

struct Store {
    rings: BTreeMap<String, VecDeque<f64>>,
    /// Counter totals at the previous tick, for delta computation.
    last_counters: BTreeMap<String, u64>,
}

fn store() -> MutexGuard<'static, Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE
        .get_or_init(|| {
            Mutex::new(Store { rings: BTreeMap::new(), last_counters: BTreeMap::new() })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn push(rings: &mut BTreeMap<String, VecDeque<f64>>, name: &str, v: f64) {
    let ring = rings
        .entry(name.to_string())
        .or_insert_with(|| VecDeque::with_capacity(SERIES_SLOTS));
    if ring.len() == SERIES_SLOTS {
        ring.pop_front();
    }
    ring.push_back(v);
}

/// Appends one point to the series named `name` (creating it on first
/// use). Exposed for callers that sample something outside the registry.
pub fn record_point(name: &str, v: f64) {
    push(&mut store().rings, name, v);
}

/// Samples the whole registry once: counter deltas, gauge levels, and
/// histogram p50/p99 per metric with any activity. Metrics that have
/// never moved produce no series (so an idle server's snapshot stays
/// small); once a series exists it receives a point on every tick.
pub fn sample_tick() {
    // Read the registry before taking the store lock; the two locks are
    // never held together (no ordering to get wrong).
    let snap = crate::snapshot();
    let mut st = store();
    let st = &mut *st;
    for m in snap {
        match m.value {
            crate::SnapshotValue::Counter(total) => {
                let last = st.last_counters.get(&m.name).copied();
                if total == 0 && last.is_none() {
                    continue;
                }
                let delta = total.saturating_sub(last.unwrap_or(0));
                st.last_counters.insert(m.name.clone(), total);
                push(&mut st.rings, &m.name, delta as f64);
            }
            crate::SnapshotValue::Gauge(level) => {
                if level == 0 && !st.rings.contains_key(&m.name) {
                    continue;
                }
                push(&mut st.rings, &m.name, level as f64);
            }
            crate::SnapshotValue::Histogram { count, p50, p99, .. } => {
                if count == 0 {
                    continue;
                }
                push(&mut st.rings, &format!("{}.p50", m.name), p50 as f64);
                push(&mut st.rings, &format!("{}.p99", m.name), p99 as f64);
            }
        }
    }
}

/// Every series, sorted by name, each oldest point first.
pub fn series_snapshot() -> Vec<(String, Vec<f64>)> {
    store()
        .rings
        .iter()
        .map(|(name, ring)| (name.clone(), ring.iter().copied().collect()))
        .collect()
}

/// Discards every series and counter baseline (test isolation).
pub fn reset_series() {
    let mut st = store();
    st.rings.clear();
    st.last_counters.clear();
}
