//! `aqo-obs` — zero-dependency observability for the aqo workspace.
//!
//! Three facilities, all process-global and safe under `std::thread::scope`
//! workers:
//!
//! * a **metrics registry** of named [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s backed by relaxed atomics (no locks on the update
//!   path — the registry mutex is taken only when a handle is first
//!   created or a snapshot is read);
//! * **span timers** ([`span`]) that record wall time into a histogram
//!   and emit a `span` event into the journal when dropped;
//! * a **structured event journal** ([`journal`]) serializing to JSON
//!   Lines through the hand-rolled encoder in [`json`] (same
//!   no-serde policy as the rest of the workspace).
//!
//! Everything is gated on one global flag: when [`enabled`] is `false`
//! (the default) every metric mutation and journal append reduces to a
//! single relaxed atomic load and a predictable branch, so instrumented
//! hot loops keep their uninstrumented performance. Instrumentation sites
//! in the optimizers additionally accumulate into plain locals and flush
//! once per run/worker, so the per-iteration cost is zero even when
//! enabled — see `docs/OBSERVABILITY.md` for the catalog and
//! `DESIGN.md` §10 for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is collecting. One relaxed load; this is the
/// entire cost of a disabled metric mutation or journal append.
#[inline]
pub fn enabled() -> bool {
    // ordering: a standalone on/off flag sampled per operation; no data
    // is published under it, and stale reads only delay when collection
    // starts/stops by one operation.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off globally. Off is the default.
pub fn set_enabled(on: bool) {
    // ordering: see `enabled` — flag toggles carry no dependent data.
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter. Handles are cheap `Arc` clones of
/// the registered atomic; updates are relaxed adds guarded by [`enabled`].
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op while collection is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            // ordering: independent monotone sum; aggregate readers run
            // after `thread::scope` join, which already orders them.
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while collection is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: see `add`
    }
}

/// A last-written-wins (or running-max) value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` (no-op while collection is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            // ordering: last-written-wins by contract; no reader infers
            // anything beyond the gauge value itself.
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed); // ordering: see `set`
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: see `set`
    }
}

/// Power-of-two bucket count for [`Histogram`]; bucket `b` holds values in
/// `[2^(b-1), 2^b)` (bucket 0 holds zero).
const HIST_BUCKETS: usize = 40;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram over `u64` samples (span timers record microseconds) with
/// power-of-two buckets plus exact count/sum/max.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample (no-op while collection is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let h = &*self.0;
        // ordering: the four fields are independent monotone aggregates;
        // `stats` makes no cross-field consistency claim (a snapshot may
        // observe a sample's count before its sum), so nothing here
        // needs to publish or acquire.
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed); // ordering: see above
        h.max.fetch_max(v, Ordering::Relaxed); // ordering: see above
        let b = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        h.buckets[b].fetch_add(1, Ordering::Relaxed); // ordering: see above
    }

    /// `(count, sum, max)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        let h = &*self.0;
        (
            // ordering: aggregate reads; see `record` for why no acquire.
            h.count.load(Ordering::Relaxed),
            h.sum.load(Ordering::Relaxed), // ordering: see above
            h.max.load(Ordering::Relaxed), // ordering: see above
        )
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Gets or creates the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Gets or creates the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Gets or creates the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramInner::new()))))
    {
        Metric::Histogram(h) => h.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Caches a [`Counter`] handle in a function-local static, so repeated
/// passes through an instrumentation site skip the registry lock.
#[macro_export]
macro_rules! counter_handle {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram `(count, sum, max)`.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Largest sample.
        max: u64,
    },
}

/// A named metric value, as returned by [`snapshot`].
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: SnapshotValue,
}

/// Every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    registry()
        .iter()
        .map(|(name, m)| MetricSnapshot {
            name: name.clone(),
            value: match m {
                Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Metric::Histogram(h) => {
                    let (count, sum, max) = h.stats();
                    SnapshotValue::Histogram { count, sum, max }
                }
            },
        })
        .collect()
}

/// Every counter with a nonzero total, sorted by name. The deterministic
/// subset of the registry — what the bench harness embeds per data point.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .iter()
        .filter_map(|(name, m)| match m {
            Metric::Counter(c) if c.get() > 0 => Some((name.clone(), c.get())),
            _ => None,
        })
        .collect()
}

/// Zeroes every registered metric (handles stay valid — they share the
/// same atomics). Does not touch the journal; see [`journal::clear`].
pub fn reset_metrics() {
    for m in registry().values() {
        // ordering: resets run between measurement phases with no
        // concurrent writers by contract; zeroing carries no payload.
        match m {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed), // ordering: see above
            Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed), // ordering: see above
            Metric::Histogram(h) => {
                h.0.count.store(0, Ordering::Relaxed); // ordering: see above
                h.0.sum.store(0, Ordering::Relaxed); // ordering: see above
                h.0.max.store(0, Ordering::Relaxed); // ordering: see above
                for b in &h.0.buckets {
                    b.store(0, Ordering::Relaxed); // ordering: see above
                }
            }
        }
    }
}

/// Renders the registry as a human-readable summary table (the CLI's
/// `--metrics` output). Zero-valued counters are omitted.
pub fn render_summary() -> String {
    let mut out = String::from("metrics:\n");
    let mut any = false;
    for s in snapshot() {
        let line = match s.value {
            SnapshotValue::Counter(0) => continue,
            SnapshotValue::Counter(v) => format!("  {:<44} {v}\n", s.name),
            SnapshotValue::Gauge(v) => format!("  {:<44} {v} (gauge)\n", s.name),
            SnapshotValue::Histogram { count: 0, .. } => continue,
            SnapshotValue::Histogram { count, sum, max } => format!(
                "  {:<44} count={count} mean={:.1}us max={max}us\n",
                s.name,
                sum as f64 / count as f64
            ),
        };
        out.push_str(&line);
        any = true;
    }
    if !any {
        out.push_str("  (none recorded)\n");
    }
    out
}

/// A live span timer: created by [`span`], it records its wall time into
/// the `span.<name>` histogram and emits a `span` journal event on drop.
/// Inert (no clock read at all) when collection is disabled at creation.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Starts a span named `name`. Hold the returned guard for the measured
/// region; drop ends it.
pub fn span(name: &'static str) -> Span {
    Span { name, start: enabled().then(Instant::now) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let us = start.elapsed().as_micros() as u64;
            histogram(&format!("span.{}", self.name)).record(us);
            journal::event(
                "span",
                vec![("name", journal::Value::from(self.name)), ("us", journal::Value::from(us))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry and flag are process-global; serialize tests touching
    // them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_counter_does_not_move() {
        let _g = lock();
        set_enabled(false);
        let c = counter("obs-test.disabled");
        let before = c.get();
        c.add(5);
        assert_eq!(c.get(), before);
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let _g = lock();
        set_enabled(true);
        let c = counter("obs-test.counter");
        let before = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), before + 4);
        set_enabled(false);
        reset_metrics();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_handle_macro_caches() {
        let _g = lock();
        set_enabled(true);
        counter_handle!("obs-test.macro").add(2);
        counter_handle!("obs-test.macro").add(2);
        assert_eq!(counter("obs-test.macro").get(), 4);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn counters_visible_from_scoped_threads() {
        let _g = lock();
        set_enabled(true);
        let c = counter("obs-test.scoped");
        c.add(0);
        reset_metrics();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter("obs-test.scoped").add(10));
            }
        });
        assert_eq!(c.get(), 40);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn histogram_stats_and_summary() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        let h = histogram("obs-test.hist");
        h.record(1);
        h.record(7);
        h.record(100);
        let (count, sum, max) = h.stats();
        assert_eq!((count, sum, max), (3, 108, 100));
        let table = render_summary();
        assert!(table.contains("obs-test.hist"), "{table}");
        assert!(table.contains("count=3"), "{table}");
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn span_records_histogram_and_event() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        journal::clear();
        {
            let _s = span("obs-test-span");
        }
        let (count, _, _) = histogram("span.obs-test-span").stats();
        assert_eq!(count, 1);
        let events = journal::drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].etype, "span");
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        counter("obs-test.z").inc();
        gauge("obs-test.a").set(9);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(snap
            .iter()
            .any(|s| s.name == "obs-test.a" && s.value == SnapshotValue::Gauge(9)));
        set_enabled(false);
        reset_metrics();
    }
}
