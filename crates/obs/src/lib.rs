//! `aqo-obs` — zero-dependency observability for the aqo workspace.
//!
//! Three facilities, all process-global and safe under `std::thread::scope`
//! workers:
//!
//! * a **metrics registry** of named [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s backed by relaxed atomics (no locks on the update
//!   path — the registry mutex is taken only when a handle is first
//!   created or a snapshot is read);
//! * **span timers** ([`span`]) that record wall time into a histogram
//!   and emit a `span` event into the journal when dropped;
//! * a **structured event journal** ([`journal`]) serializing to JSON
//!   Lines through the hand-rolled encoder in [`json`] (same
//!   no-serde policy as the rest of the workspace).
//!
//! Everything is gated on one global flag: when [`enabled`] is `false`
//! (the default) every metric mutation and journal append reduces to a
//! single relaxed atomic load and a predictable branch, so instrumented
//! hot loops keep their uninstrumented performance. Instrumentation sites
//! in the optimizers additionally accumulate into plain locals and flush
//! once per run/worker, so the per-iteration cost is zero even when
//! enabled — see `docs/OBSERVABILITY.md` for the catalog and
//! `DESIGN.md` §10 for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod series;
pub mod trace;
pub mod traceview;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is collecting. One relaxed load; this is the
/// entire cost of a disabled metric mutation or journal append.
#[inline]
pub fn enabled() -> bool {
    // ordering: a standalone on/off flag sampled per operation; no data
    // is published under it, and stale reads only delay when collection
    // starts/stops by one operation.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off globally. Off is the default.
pub fn set_enabled(on: bool) {
    // ordering: see `enabled` — flag toggles carry no dependent data.
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter. Handles are cheap `Arc` clones of
/// the registered atomic; updates are relaxed adds guarded by [`enabled`].
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (no-op while collection is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            // ordering: independent monotone sum; aggregate readers run
            // after `thread::scope` join, which already orders them.
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while collection is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: see `add`
    }
}

/// A last-written-wins (or running-max) value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v` (no-op while collection is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            // ordering: last-written-wins by contract; no reader infers
            // anything beyond the gauge value itself.
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (no-op while disabled).
    ///
    /// Race note: `fetch_max` is a single atomic RMW, so concurrent
    /// `set_max` calls cannot lose updates. The lost-update hazard is the
    /// *composed* pattern `g.set(g.get() + 1)` — two threads read the
    /// same value and one increment vanishes. Use [`add`](Gauge::add) /
    /// [`sub`](Gauge::sub) for level tracking instead; the interleaving
    /// model test `tests/model_gauge.rs` exhibits the lost update under
    /// get+set and proves `add` free of it. (The serve gauges
    /// `serve.queue_depth`/`serve.inflight` are `set` under the server
    /// state lock, which also rules the race out — audited for ISSUE 8.)
    #[inline]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed); // ordering: see `set`
        }
    }

    /// Adds `n` to the gauge level (no-op while disabled). A single
    /// atomic RMW, so concurrent adds never lose updates — unlike
    /// `set(get() + n)`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed); // ordering: see `set`
        }
    }

    /// Subtracts `n` from the gauge level, saturating at 0 (no-op while
    /// disabled). Saturation uses a CAS loop so a racing `sub` below
    /// zero clamps instead of wrapping to `u64::MAX`.
    #[inline]
    pub fn sub(&self, n: u64) {
        if enabled() {
            // ordering: see `set`; the CAS only needs the value, not any
            // other memory.
            let mut cur = self.0.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match self.0.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed, // ordering: see `set`
                    Ordering::Relaxed, // ordering: see `set`
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: see `set`
    }
}

/// Bucket count for [`Histogram`]: log-bucketed with **2 sub-buckets per
/// octave**. Bucket 0 holds zero; for `v >= 1` with `k = floor(log2 v)`,
/// the index is `1 + 2k + half` where `half` is the bit below the
/// leading bit (so each power-of-two range `[2^k, 2^(k+1))` splits into
/// two equal halves). 128 buckets cover the full `u64` range; the
/// half-octave resolution bounds quantile error to about ±17%.
const HIST_BUCKETS: usize = 128;

/// Bucket index for sample `v` (see [`HIST_BUCKETS`]).
#[inline]
fn hist_bucket(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let k = 63 - v.leading_zeros() as usize;
    let half = if k >= 1 { ((v >> (k - 1)) & 1) as usize } else { 0 };
    (1 + 2 * k + half).min(HIST_BUCKETS - 1)
}

/// Representative value (midpoint) of bucket `idx`, used when reading
/// quantiles back out.
fn hist_bucket_rep(idx: usize) -> u64 {
    if idx == 0 {
        return 0;
    }
    let k = (idx - 1) / 2;
    let half = ((idx - 1) % 2) as u64;
    if k == 0 {
        return 1;
    }
    // Bucket spans [low, low + width): low = (2 + half) << (k-1).
    let low = (2 + half) << (k - 1);
    let width = 1u64 << (k - 1);
    low + width / 2
}

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram over `u64` samples (span timers record microseconds) with
/// half-octave log buckets plus exact count/sum/max, and approximate
/// quantiles via [`quantile`](Histogram::quantile).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A fresh, **unregistered** histogram for offline aggregation (the
    /// loadgen computes latency quantiles through one of these without
    /// touching the global registry or the enabled flag).
    pub fn detached() -> Histogram {
        Histogram(Arc::new(HistogramInner::new()))
    }

    /// Records one sample (no-op while collection is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.record_always(v);
    }

    /// Records one sample unconditionally, ignoring the global enabled
    /// flag. For [`detached`](Histogram::detached) histograms.
    #[inline]
    pub fn record_always(&self, v: u64) {
        let h = &*self.0;
        // ordering: the four fields are independent monotone aggregates;
        // `stats` makes no cross-field consistency claim (a snapshot may
        // observe a sample's count before its sum), so nothing here
        // needs to publish or acquire.
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed); // ordering: see above
        h.max.fetch_max(v, Ordering::Relaxed); // ordering: see above
        // analyze:allow(panic-path) -- hist_bucket clamps its result with
        // .min(HIST_BUCKETS - 1), so the index is provably in range.
        h.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed); // ordering: see above
    }

    /// `(count, sum, max)` so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        let h = &*self.0;
        (
            // ordering: aggregate reads; see `record` for why no acquire.
            h.count.load(Ordering::Relaxed),
            h.sum.load(Ordering::Relaxed), // ordering: see above
            h.max.load(Ordering::Relaxed), // ordering: see above
        )
    }

    /// The approximate `q`-quantile (`0.0 < q <= 1.0`) of the samples so
    /// far: the midpoint of the bucket containing the rank-`ceil(q·count)`
    /// sample, capped at the exact observed max. 0 when empty. Half-octave
    /// buckets bound the relative error to about ±17%.
    pub fn quantile(&self, q: f64) -> u64 {
        let h = &*self.0;
        let count = h.count.load(Ordering::Relaxed); // ordering: see `stats`
        if count == 0 {
            return 0;
        }
        let max = h.max.load(Ordering::Relaxed); // ordering: see `stats`
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, b) in h.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed); // ordering: see `stats`
            if cum >= rank {
                return hist_bucket_rep(idx).min(max);
            }
        }
        // A racing record can leave count ahead of the bucket sums; the
        // highest observed sample is the right answer for any tail rank.
        max
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Gets or creates the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Gets or creates the gauge named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Gets or creates the histogram named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramInner::new()))))
    {
        Metric::Histogram(h) => h.clone(),
        // analyze:allow(no-unwrap-in-lib) -- documented API panic: a
        // name registered under two metric kinds is a programming
        // error (see the `# Panics` section), not a runtime condition.
        other => panic!("metric `{name}` already registered as {other:?}"),
    }
}

/// Caches a [`Counter`] handle in a function-local static, so repeated
/// passes through an instrumentation site skip the registry lock.
#[macro_export]
macro_rules! counter_handle {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram aggregates plus approximate quantiles.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Largest sample.
        max: u64,
        /// Approximate 50th percentile.
        p50: u64,
        /// Approximate 90th percentile.
        p90: u64,
        /// Approximate 99th percentile.
        p99: u64,
        /// Approximate 99.9th percentile.
        p999: u64,
    },
}

/// A named metric value, as returned by [`snapshot`].
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: SnapshotValue,
}

/// Every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    registry()
        .iter()
        .map(|(name, m)| MetricSnapshot {
            name: name.clone(),
            value: match m {
                Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Metric::Histogram(h) => {
                    let (count, sum, max) = h.stats();
                    SnapshotValue::Histogram {
                        count,
                        sum,
                        max,
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                        p999: h.quantile(0.999),
                    }
                }
            },
        })
        .collect()
}

/// Every counter with a nonzero total, sorted by name. The deterministic
/// subset of the registry — what the bench harness embeds per data point.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .iter()
        .filter_map(|(name, m)| match m {
            Metric::Counter(c) if c.get() > 0 => Some((name.clone(), c.get())),
            _ => None,
        })
        .collect()
}

/// Zeroes every registered metric (handles stay valid — they share the
/// same atomics). Does not touch the journal; see [`journal::clear`].
pub fn reset_metrics() {
    for m in registry().values() {
        // ordering: resets run between measurement phases with no
        // concurrent writers by contract; zeroing carries no payload.
        match m {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed), // ordering: see above
            Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed), // ordering: see above
            Metric::Histogram(h) => {
                h.0.count.store(0, Ordering::Relaxed); // ordering: see above
                h.0.sum.store(0, Ordering::Relaxed); // ordering: see above
                h.0.max.store(0, Ordering::Relaxed); // ordering: see above
                for b in &h.0.buckets {
                    b.store(0, Ordering::Relaxed); // ordering: see above
                }
            }
        }
    }
}

/// Renders the registry as a human-readable summary table (the CLI's
/// `--metrics` output). Zero-valued counters and empty histograms are
/// omitted; lines are sorted by metric name so the output is
/// byte-deterministic for a given registry state and diffs cleanly
/// across runs.
pub fn render_summary() -> String {
    let mut snap = snapshot();
    // `snapshot` is BTreeMap-ordered already; sort explicitly so the
    // determinism contract survives a registry reimplementation.
    snap.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("metrics:\n");
    let mut any = false;
    for s in snap {
        let line = match s.value {
            SnapshotValue::Counter(0) => continue,
            SnapshotValue::Counter(v) => format!("  {:<44} {v}\n", s.name),
            SnapshotValue::Gauge(v) => format!("  {:<44} {v} (gauge)\n", s.name),
            SnapshotValue::Histogram { count: 0, .. } => continue,
            SnapshotValue::Histogram { count, sum, max, p50, p90, p99, p999 } => format!(
                "  {:<44} count={count} mean={:.1}us p50={p50}us p90={p90}us p99={p99}us p999={p999}us max={max}us\n",
                s.name,
                sum as f64 / count as f64
            ),
        };
        out.push_str(&line);
        any = true;
    }
    if !any {
        out.push_str("  (none recorded)\n");
    }
    out
}

/// A live span timer: created by [`span`], it records its wall time into
/// the `span.<name>` histogram and emits a `span` journal event on drop.
/// Inert (no clock read at all) when collection is disabled at creation.
///
/// When a [`trace`] context is active on the creating thread the span is
/// additionally *traced*: it mints a span id, emits a `span_start` event
/// (stamped with its parent via the context), and pushes itself onto the
/// context stack so nested spans and events parent to it. The closing
/// `span` event then carries the same `span_id`, and `trace view`
/// reassembles the tree. Without a context nothing changes — exactly one
/// `span` event, no ids.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    /// Minted span id when traced; 0 when untraced.
    span_id: u64,
}

/// Starts a span named `name`. Hold the returned guard for the measured
/// region; drop ends it.
pub fn span(name: &'static str) -> Span {
    let start = enabled().then(Instant::now);
    let mut span_id = 0;
    if start.is_some() && trace::active() {
        span_id = trace::next_span_id();
        // Emit before pushing so the start event's auto-attached
        // `parent_span_id` is this span's parent, not itself.
        journal::event(
            "span_start",
            vec![
                ("name", journal::Value::from(name)),
                ("span_id", journal::Value::from(span_id)),
            ],
        );
        trace::push_span(span_id);
    }
    Span { name, start, span_id }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let us = start.elapsed().as_micros() as u64;
            histogram(&format!("span.{}", self.name)).record(us);
            if self.span_id != 0 {
                // Pop first so the end event parents to this span's
                // parent — symmetric with `span_start`.
                trace::pop_span(self.span_id);
                // `dur_us`, not `us`: the serialized line already carries
                // the reserved `us` timestamp key, and the journal parser
                // returns the first match for a duplicated key.
                journal::event(
                    "span",
                    vec![
                        ("name", journal::Value::from(self.name)),
                        ("span_id", journal::Value::from(self.span_id)),
                        ("dur_us", journal::Value::from(us)),
                    ],
                );
            } else {
                journal::event(
                    "span",
                    vec![
                        ("name", journal::Value::from(self.name)),
                        ("us", journal::Value::from(us)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry and flag are process-global; serialize tests touching
    // them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_counter_does_not_move() {
        let _g = lock();
        set_enabled(false);
        let c = counter("obs-test.disabled");
        let before = c.get();
        c.add(5);
        assert_eq!(c.get(), before);
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let _g = lock();
        set_enabled(true);
        let c = counter("obs-test.counter");
        let before = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), before + 4);
        set_enabled(false);
        reset_metrics();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_handle_macro_caches() {
        let _g = lock();
        set_enabled(true);
        counter_handle!("obs-test.macro").add(2);
        counter_handle!("obs-test.macro").add(2);
        assert_eq!(counter("obs-test.macro").get(), 4);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn counters_visible_from_scoped_threads() {
        let _g = lock();
        set_enabled(true);
        let c = counter("obs-test.scoped");
        c.add(0);
        reset_metrics();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter("obs-test.scoped").add(10));
            }
        });
        assert_eq!(c.get(), 40);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn histogram_stats_and_summary() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        let h = histogram("obs-test.hist");
        h.record(1);
        h.record(7);
        h.record(100);
        let (count, sum, max) = h.stats();
        assert_eq!((count, sum, max), (3, 108, 100));
        let table = render_summary();
        assert!(table.contains("obs-test.hist"), "{table}");
        assert!(table.contains("count=3"), "{table}");
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn span_records_histogram_and_event() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        journal::clear();
        {
            let _s = span("obs-test-span");
        }
        let (count, _, _) = histogram("span.obs-test-span").stats();
        assert_eq!(count, 1);
        let events = journal::drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].etype, "span");
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        let h = Histogram::detached();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=1000u64 {
            h.record_always(v);
        }
        let (count, sum, max) = h.stats();
        assert_eq!((count, sum, max), (1000, 500500, 1000));
        let (p50, p90, p99, p999) =
            (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= max);
        // Half-octave buckets: each estimate within ±25% of the exact
        // rank value (bucket midpoint error is < 17%, rank rounding adds
        // a little).
        assert!((375..=625).contains(&p50), "p50={p50}");
        assert!((675..=1000).contains(&p90), "p90={p90}");
        assert!((742..=1000).contains(&p99), "p99={p99}");
        // The max cap keeps tail quantiles from overshooting the data.
        assert!(p999 <= 1000, "p999={p999}");
        // Single-sample histogram: every quantile is that sample's bucket,
        // capped at max.
        let one = Histogram::detached();
        one.record_always(7);
        assert_eq!(one.quantile(0.5), 7);
        assert_eq!(one.quantile(0.999), 7);
    }

    #[test]
    fn hist_buckets_partition_and_round_trip() {
        // Bucket index is monotone in v and the representative lands in
        // the same bucket it represents.
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 16, 100, 1000, 1 << 20, u64::MAX] {
            let b = hist_bucket(v);
            assert!(b >= prev, "bucket index not monotone at {v}");
            prev = b;
            if b < HIST_BUCKETS - 1 {
                assert_eq!(hist_bucket(hist_bucket_rep(b)), b, "rep of bucket {b} escapes it");
            }
        }
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 3);
        assert_eq!(hist_bucket(3), 4);
    }

    #[test]
    fn traced_spans_nest_and_stamp_events() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        journal::clear();
        let tid = trace::next_trace_id();
        {
            let _t = trace::install(trace::TraceHandle::root(tid));
            let _outer = span("obs-test-outer");
            journal::event("obs_test_mark", vec![]);
            let _inner = span("obs-test-inner");
        }
        set_enabled(false);
        let events = journal::drain();
        // span_start(outer), mark, span_start(inner), span(inner), span(outer)
        let types: Vec<&str> = events.iter().map(|e| e.etype).collect();
        assert_eq!(
            types,
            vec!["span_start", "obs_test_mark", "span_start", "span", "span"],
            "{types:?}"
        );
        let field = |e: &journal::Event, key: &str| -> u64 {
            e.fields
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, v)| match v {
                    journal::Value::U64(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("missing {key} in {e:?}"))
        };
        for e in &events {
            assert_eq!(field(e, "trace_id"), tid, "{e:?}");
        }
        let outer_id = field(&events[0], "span_id");
        assert_eq!(field(&events[0], "parent_span_id"), 0);
        assert_eq!(field(&events[1], "parent_span_id"), outer_id, "event parents to open span");
        assert_eq!(field(&events[2], "parent_span_id"), outer_id, "inner span parents to outer");
        let inner_id = field(&events[2], "span_id");
        assert_eq!(field(&events[3], "span_id"), inner_id, "inner closes first");
        assert_eq!(field(&events[4], "span_id"), outer_id);
        assert_eq!(field(&events[4], "parent_span_id"), 0, "outer end back at root");
        // The journal must pass its own nesting check.
        let jsonl = journal::to_jsonl(&events);
        let report = traceview::check(&jsonl).expect("nesting check");
        assert_eq!(report.spans, 2);
        assert_eq!(report.traces, 1);
        reset_metrics();
    }

    #[test]
    fn capture_gate_stops_events_not_metrics() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        journal::clear();
        journal::set_capture(false);
        counter("obs-test.gated").inc();
        journal::event("obs_test_gated", vec![]);
        assert_eq!(counter("obs-test.gated").get(), 1, "metrics keep collecting");
        assert!(journal::drain().is_empty(), "events gated off");
        journal::set_capture(true);
        journal::event("obs_test_gated", vec![]);
        assert_eq!(journal::drain().len(), 1);
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn series_rings_fill_and_wrap() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        series::reset_series();
        let c = counter("obs-test.series.ctr");
        gauge("obs-test.series.gauge").set(5);
        let h = histogram("obs-test.series.hist");
        h.record(10);
        c.add(3);
        series::sample_tick();
        c.add(2);
        series::sample_tick();
        let snap = series::series_snapshot();
        let get = |name: &str| -> Vec<f64> {
            snap.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone()).unwrap_or_default()
        };
        assert_eq!(get("obs-test.series.ctr"), vec![3.0, 2.0], "counter deltas per tick");
        assert_eq!(get("obs-test.series.gauge"), vec![5.0, 5.0], "gauge level per tick");
        assert_eq!(get("obs-test.series.hist.p50").len(), 2, "histogram quantile series");
        // Rings cap at SERIES_SLOTS, dropping oldest.
        for i in 0..(series::SERIES_SLOTS + 10) {
            series::record_point("obs-test.series.ring", i as f64);
        }
        let ring = series::series_snapshot()
            .into_iter()
            .find(|(n, _)| n == "obs-test.series.ring")
            .map(|(_, v)| v)
            .unwrap_or_default();
        assert_eq!(ring.len(), series::SERIES_SLOTS);
        assert_eq!(ring[0], 10.0, "oldest points dropped");
        assert_eq!(*ring.last().unwrap(), (series::SERIES_SLOTS + 9) as f64);
        series::reset_series();
        set_enabled(false);
        reset_metrics();
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let _g = lock();
        set_enabled(true);
        reset_metrics();
        counter("obs-test.z").inc();
        gauge("obs-test.a").set(9);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(snap
            .iter()
            .any(|s| s.name == "obs-test.a" && s.value == SnapshotValue::Gauge(9)));
        set_enabled(false);
        reset_metrics();
    }
}
