//! Minimal hand-rolled JSON: string escaping for the encoder side and a
//! recursive-descent parser for the validator side (`aqo trace-check`).
//!
//! The parser accepts standard JSON (RFC 8259) minus two conveniences we
//! never emit: no `\uXXXX` surrogate-pair recombination beyond the basic
//! plane is attempted, and numbers parse through `f64`. That is exactly
//! enough to validate our own journal and bench documents without pulling
//! in a dependency.

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, via `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, preserving key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number bytes at byte {start}"))?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", *other as char)),
                }
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| format!("unterminated string at byte {}", *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_and_parse_round_trip() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\\ unicode: λ control: \u{1}";
        let mut enc = String::new();
        escape_into(&mut enc, nasty);
        assert_eq!(parse(&enc).unwrap(), JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_arr).map(<[_]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\": }", "tru", "\"unterminated", "1 2", "{\"a\":1} x"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        assert_eq!(parse(" { } ").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("42").unwrap().as_num(), Some(42.0));
    }
}
