//! Golden test for `traceview::render` over a committed mini-journal.
//!
//! The fixture is the verbatim `--trace-json` output of a single optimize
//! request served through `aqo serve --stdio` (chain n=5, seed 3): one
//! trace whose span tree nests serve.request → driver.optimize_qon →
//! tier.dp → dp.optimize. Pinning the rendered text keeps the tree
//! layout, time accounting, and critical-path marking stable for anything
//! that scrapes `aqo trace view` output.

use aqo_obs::traceview;

const FIXTURE: &str = include_str!("fixtures/mini_journal.jsonl");

const GOLDEN: &str = "\
trace 1 (4 spans, 7 events)
  * serve.request                total=498us self=113us events=1
    * driver.optimize_qon          total=385us self=12us events=3
      * tier.dp                      total=373us self=5us
        * dp.optimize                  total=368us self=368us events=2
";

#[test]
fn render_matches_golden_tree() {
    let rendered = traceview::render(FIXTURE).expect("fixture renders");
    assert_eq!(rendered, GOLDEN, "rendered:\n{rendered}\nexpected:\n{GOLDEN}");
}

#[test]
fn check_passes_on_fixture() {
    let report = traceview::check(FIXTURE).expect("fixture is balanced");
    assert_eq!(report.traces, 1);
    assert_eq!(report.spans, 4);
    // Every line except the untraced serve_shutdown carries the trace id.
    assert_eq!(report.traced_events, 15);
}

#[test]
fn fixture_lines_all_parse_as_journal_events() {
    for (i, line) in FIXTURE.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let v = aqo_obs::json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        assert!(v.get("type").is_some(), "line {} has no type", i + 1);
        assert!(v.get("seq").is_some(), "line {} has no seq", i + 1);
    }
}
