//! Exhaustive interleaving model of the trace journal's append protocol,
//! plus a real-thread stress check.
//!
//! The journal promises that **buffer order agrees with seq order**: if
//! event A sits before event B in the buffer, then `A.seq < B.seq`. The
//! current protocol claims the seq counter *while holding* the buffer
//! lock. An earlier draft claimed the seq *before* taking the lock —
//! plausible-looking (the counter is atomic, the push is locked), but the
//! model below proves it violates the invariant: a thread can claim seq
//! `n`, get descheduled, and append after the thread holding seq `n+1`.
//! The explorer produces that exact schedule.
//!
//! Uses [`aqo_core::interleave`] (a dev-dependency — Cargo permits the
//! `core → obs` / `obs --dev→ core` cycle because dev-dependencies don't
//! participate in the library build graph).

use aqo_core::interleave::{explore, StepOutcome};

/// Two emitter threads appending one event each.
#[derive(Clone)]
struct JournalModel {
    /// The global seq counter (models the `SEQ` atomic).
    seq: u64,
    /// Which thread holds the buffer lock, if any.
    locked: Option<usize>,
    /// The buffer: claimed seq values in append order.
    buffer: Vec<u64>,
    /// Per-thread program counter.
    pc: [u8; 2],
    /// Per-thread claimed seq.
    claimed: [u64; 2],
}

impl JournalModel {
    fn new() -> Self {
        JournalModel { seq: 0, locked: None, buffer: Vec::new(), pc: [0; 2], claimed: [0; 2] }
    }
}

/// The earlier, racy draft: claim seq with the atomic *first*, then lock
/// and push.
fn seq_before_lock_step(s: &mut JournalModel, tid: usize) -> StepOutcome {
    match s.pc[tid] {
        // Atomic fetch_add outside the lock.
        0 => {
            s.claimed[tid] = s.seq;
            s.seq += 1;
            s.pc[tid] = 1;
            StepOutcome::Ran
        }
        // Acquire the buffer lock.
        1 => {
            if s.locked.is_some() {
                return StepOutcome::Blocked;
            }
            s.locked = Some(tid);
            s.pc[tid] = 2;
            StepOutcome::Ran
        }
        // Push and release.
        _ => {
            s.buffer.push(s.claimed[tid]);
            s.locked = None;
            StepOutcome::Done
        }
    }
}

/// The shipped protocol: acquire the lock, claim seq under it, push,
/// release. Mirrors `aqo_obs::journal::event`.
fn seq_under_lock_step(s: &mut JournalModel, tid: usize) -> StepOutcome {
    match s.pc[tid] {
        0 => {
            if s.locked.is_some() {
                return StepOutcome::Blocked;
            }
            s.locked = Some(tid);
            s.pc[tid] = 1;
            StepOutcome::Ran
        }
        1 => {
            s.claimed[tid] = s.seq;
            s.seq += 1;
            s.pc[tid] = 2;
            StepOutcome::Ran
        }
        _ => {
            s.buffer.push(s.claimed[tid]);
            s.locked = None;
            StepOutcome::Done
        }
    }
}

/// Buffer order must agree with seq order at every point, and every claimed
/// seq must be unique (gap-free at the end).
fn order_invariant(s: &JournalModel, done: bool) -> Result<(), String> {
    for w in s.buffer.windows(2) {
        if w[0] >= w[1] {
            return Err(format!("buffer order disagrees with seq order: {:?}", s.buffer));
        }
    }
    if done {
        let mut sorted = s.buffer.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = (0..s.buffer.len() as u64).collect();
        if sorted != want {
            return Err(format!("seqs not gap-free: {:?}", s.buffer));
        }
    }
    Ok(())
}

#[test]
fn seq_before_lock_violates_buffer_order() {
    let t0 = |s: &mut JournalModel| seq_before_lock_step(s, 0);
    let t1 = |s: &mut JournalModel| seq_before_lock_step(s, 1);
    let v = explore(&JournalModel::new(), &[&t0, &t1], &order_invariant, 32)
        .expect_err("claiming seq outside the lock must reorder somewhere");
    assert!(v.message.contains("disagrees"), "{v}");
    // The counterexample: t0 claims seq 0, t1 claims seq 1 and then wins
    // the lock race and buffers it; t0 locks and buffers seq 0 after it.
    assert_eq!(v.schedule, vec![0, 1, 1, 1, 0, 0], "{v}");
}

#[test]
fn seq_under_lock_holds_under_every_interleaving() {
    let t0 = |s: &mut JournalModel| seq_under_lock_step(s, 0);
    let t1 = |s: &mut JournalModel| seq_under_lock_step(s, 1);
    let n = explore(&JournalModel::new(), &[&t0, &t1], &order_invariant, 32)
        .unwrap_or_else(|v| panic!("{v}"));
    // Both serial orders, in full: lock acquisition serializes the rest.
    assert!(n >= 2, "explored only {n} schedules");
}

/// The real journal under real threads: concurrent emitters, then check
/// the buffered events' seqs are strictly increasing in buffer order.
/// Not exhaustive (the model above is) — this checks the implementation
/// matches the modeled protocol.
#[test]
fn real_journal_buffer_order_agrees_with_seq_order() {
    aqo_obs::set_enabled(true);
    aqo_obs::journal::clear();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..250 {
                    aqo_obs::journal::event("model_stress", vec![]);
                }
            });
        }
    });
    let events = aqo_obs::journal::drain();
    let stress: Vec<_> = events.iter().filter(|e| e.etype == "model_stress").collect();
    assert_eq!(stress.len(), 1000);
    for w in stress.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "buffer order disagrees with seq order: {} then {}",
            w[0].seq,
            w[1].seq
        );
    }
}
