//! Interleaving model of gauge level updates (ISSUE 8 satellite).
//!
//! Serve tracks queue depth with a gauge. The tempting update is the
//! composed read-modify-write `g.set(g.get() + 1)` — two instructions,
//! so two enqueuing threads can both read the same level and one
//! increment vanishes. The model below makes the explorer produce that
//! exact lost-update schedule, and proves the single-RMW
//! [`Gauge::add`](aqo_obs::Gauge::add) (an atomic `fetch_add`, one model
//! step) free of it under *every* interleaving. `set_max` is likewise a
//! single `fetch_max` RMW, so the same argument covers both audited
//! call-site patterns; the remaining serve gauges are `set` under the
//! server state lock, which serializes the read and write.

use aqo_core::interleave::{explore, StepOutcome};

/// Two threads each incrementing a shared gauge level once.
#[derive(Clone)]
struct GaugeModel {
    level: u64,
    /// Per-thread program counter.
    pc: [u8; 2],
    /// Per-thread value read by the composed get+set path.
    read: [u64; 2],
}

impl GaugeModel {
    fn new() -> Self {
        GaugeModel { level: 0, pc: [0; 2], read: [0; 2] }
    }
}

/// The racy pattern: `get()` then `set(read + 1)` as two separate atomic
/// operations.
fn get_then_set_step(s: &mut GaugeModel, tid: usize) -> StepOutcome {
    match s.pc[tid] {
        0 => {
            s.read[tid] = s.level;
            s.pc[tid] = 1;
            StepOutcome::Ran
        }
        _ => {
            s.level = s.read[tid] + 1;
            StepOutcome::Done
        }
    }
}

/// `Gauge::add(1)`: one atomic RMW, so one indivisible model step.
fn fetch_add_step(s: &mut GaugeModel, _tid: usize) -> StepOutcome {
    s.level += 1;
    StepOutcome::Done
}

/// After both increments retire, the level must be 2.
fn no_lost_update(s: &GaugeModel, done: bool) -> Result<(), String> {
    if done && s.level != 2 {
        return Err(format!("lost update: level={} after two increments", s.level));
    }
    Ok(())
}

#[test]
fn get_then_set_loses_an_update() {
    let t0 = |s: &mut GaugeModel| get_then_set_step(s, 0);
    let t1 = |s: &mut GaugeModel| get_then_set_step(s, 1);
    let v = explore(&GaugeModel::new(), &[&t0, &t1], &no_lost_update, 16)
        .expect_err("composed get+set must lose an update somewhere");
    assert!(v.message.contains("lost update"), "{v}");
    // The counterexample: both threads read level 0, then both write 1.
    assert_eq!(v.schedule, vec![0, 1, 0, 1], "{v}");
}

#[test]
fn fetch_add_holds_under_every_interleaving() {
    let t0 = |s: &mut GaugeModel| fetch_add_step(s, 0);
    let t1 = |s: &mut GaugeModel| fetch_add_step(s, 1);
    let n = explore(&GaugeModel::new(), &[&t0, &t1], &no_lost_update, 16)
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(n, 2, "two single-step threads have exactly two schedules");
}

/// The real `Gauge` under real threads: `add`/`sub` from concurrent
/// workers never lose updates, and `sub` saturates at zero instead of
/// wrapping. Not exhaustive (the model above is) — this checks the
/// implementation matches the modeled single-RMW semantics.
#[test]
fn real_gauge_add_sub_balance() {
    aqo_obs::set_enabled(true);
    let g = aqo_obs::gauge("model-gauge.level");
    g.set(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..1000 {
                    g.add(3);
                    g.sub(2);
                }
            });
        }
    });
    assert_eq!(g.get(), 4 * 1000);
    g.set(5);
    g.sub(100);
    assert_eq!(g.get(), 0, "sub saturates at zero");
    aqo_obs::set_enabled(false);
}
