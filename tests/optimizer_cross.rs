//! Integration: every optimizer agrees with every other where their scopes
//! overlap — exhaustive = DP = branch-and-bound; IKKBZ = DP on trees;
//! heuristics never beat the optimum; QO_H decomposition DP = brute force.

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use aqo_core::qoh::QoHInstance;
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::generators;
use aqo_optimizer::{branch_bound, dp, exhaustive, genetic, greedy, ikkbz, local_search, pipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn qon_instance(n: usize, extra_edges: usize, rng: &mut StdRng) -> QoNInstance {
    let g = generators::random_connected(n, (n - 1 + extra_edges).min(n * (n - 1) / 2), rng);
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(2u64..300))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..40)));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

#[test]
fn exact_optimizers_agree() {
    let mut rng = StdRng::seed_from_u64(100);
    for trial in 0..6 {
        let inst = qon_instance(7, 4, &mut rng);
        let ex = exhaustive::optimize::<BigRational>(&inst);
        let d = dp::optimize::<BigRational>(&inst, true).unwrap();
        let bb = branch_bound::optimize::<BigRational>(&inst, true).unwrap();
        assert_eq!(ex.cost, d.cost, "trial {trial}");
        assert_eq!(ex.cost, bb.cost, "trial {trial}");
        // And the no-cartesian variants.
        let exn = exhaustive::optimize_no_cartesian::<BigRational>(&inst).unwrap();
        let dn = dp::optimize::<BigRational>(&inst, false).unwrap();
        let bbn = branch_bound::optimize::<BigRational>(&inst, false).unwrap();
        assert_eq!(exn.cost, dn.cost, "trial {trial}");
        assert_eq!(exn.cost, bbn.cost, "trial {trial}");
    }
}

#[test]
fn ikkbz_equals_dp_on_trees() {
    let mut rng = StdRng::seed_from_u64(200);
    for trial in 0..8 {
        let inst = qon_instance(2 + trial % 8, 0, &mut rng);
        if inst.graph().m() != inst.n() - 1 {
            continue;
        }
        let ik = ikkbz::optimize(&inst);
        let d = dp::optimize::<BigRational>(&inst, false).unwrap();
        assert_eq!(ik.cost, d.cost, "trial {trial}");
    }
}

#[test]
fn heuristics_never_beat_the_optimum() {
    let mut rng = StdRng::seed_from_u64(300);
    let inst = qon_instance(9, 5, &mut rng);
    let opt = dp::optimize::<BigRational>(&inst, true).unwrap();
    let candidates: Vec<JoinSequence> = vec![
        greedy::min_intermediate(&inst, true).unwrap(),
        greedy::min_incremental_cost(&inst, true).unwrap(),
        local_search::hill_climb(&inst, 2, &mut rng),
        local_search::simulated_annealing(
            &inst,
            &local_search::SaParams { iterations: 2000, ..Default::default() },
            &mut rng,
        ),
        genetic::optimize(
            &inst,
            &genetic::GaParams { population: 16, generations: 25, ..Default::default() },
            &mut rng,
        ),
        greedy::random_sequence(9, &mut rng),
    ];
    for (i, z) in candidates.iter().enumerate() {
        let c: BigRational = inst.total_cost(z);
        assert!(c >= opt.cost, "heuristic {i} beat the exact optimum?!");
    }
}

#[test]
fn log_backend_dp_matches_exact_dp() {
    let mut rng = StdRng::seed_from_u64(400);
    for trial in 0..5 {
        let inst = qon_instance(8, 4, &mut rng);
        let exact = dp::optimize::<BigRational>(&inst, true).unwrap();
        let log = dp::optimize::<LogNum>(&inst, true).unwrap();
        let recost: BigRational = inst.total_cost(&log.sequence);
        let diff = CostScalar::log2(&recost) - CostScalar::log2(&exact.cost);
        assert!(diff.abs() < 1e-6, "trial {trial}: log DP diverged by {diff} bits");
    }
}

#[test]
fn qoh_decomposition_dp_matches_bruteforce() {
    let mut g = aqo_graph::Graph::new(6);
    let mut s = SelectivityMatrix::new();
    for v in 1..6 {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(6u64)));
    }
    for mem in [40u64, 120, 400, 2000] {
        let inst =
            QoHInstance::new(g.clone(), vec![BigUint::from(400u64); 6], s.clone(), BigUint::from(mem));
        let z = JoinSequence::identity(6);
        let a = pipeline::best_decomposition(&inst, &z);
        let b = pipeline::best_decomposition_bruteforce(&inst, &z);
        match (a, b) {
            (Some((_, ca)), Some((_, cb))) => assert_eq!(ca, cb, "mem {mem}"),
            (None, None) => {}
            other => panic!("feasibility mismatch at mem {mem}: {other:?}"),
        }
    }
}
