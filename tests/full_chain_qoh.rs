//! Integration: the Theorem 15 chain `3SAT → ⅔CLIQUE → QO_H` across crate
//! boundaries.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::JoinSequence;
use aqo_graph::clique;
use aqo_optimizer::pipeline;
use aqo_reductions::{clique_reduction, fh_reduction};
use aqo_sat::{CnfFormula, Lit};

/// A tiny satisfiable formula whose Lemma 4 image is DP-manageable.
fn sat_formula() -> CnfFormula {
    CnfFormula::from_clauses(
        3,
        vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
        ],
    )
}

#[test]
fn satisfiable_formula_yields_two_thirds_clique_and_cheap_plan() {
    let f = sat_formula();
    let red_g = clique_reduction::sat_to_two_thirds_clique(&f);
    let n = red_g.graph.n();
    assert_eq!(n % 3, 0);
    let omega = clique::clique_number(&red_g.graph);
    assert_eq!(omega, 2 * n / 3, "satisfiable ⟹ a two-thirds clique");

    // f_H on the ⅔CLIQUE instance: the witness plan is feasible and O(L).
    let b = BigUint::from(2u64).pow(2 * n as u64);
    let red = fh_reduction::reduce(&red_g.graph, &b);
    let cl = clique::max_clique(&red_g.graph);
    let (z, decomp) = fh_reduction::lemma12_witness(&red, &cl[..2 * n / 3]);
    let cost = red.instance.plan_cost_optimal_alloc(&z, &decomp).expect("feasible witness");
    let l = BigRational::from(fh_reduction::l_bound(&red));
    assert!(cost <= l * BigRational::from(16u64), "Lemma 12 O(L) frame");
}

#[test]
fn unsatisfiable_formula_lifts_the_intermediates() {
    let f = aqo_sat::generators::contradiction_blocks(1);
    let red_g = clique_reduction::sat_to_two_thirds_clique(&f);
    let n = red_g.graph.n();
    let omega = clique::clique_number(&red_g.graph) as u64;
    assert!(omega < 2 * n as u64 / 3);

    let b = BigUint::from(2u64).pow(2 * n as u64);
    let red = fh_reduction::reduce(&red_g.graph, &b);
    // Certified Lemma 13 bound vs. a sampled feasible sequence's actual
    // N_{2n/3} (the bound covers every sequence; sampling demonstrates it).
    let lb = fh_reduction::lemma13_n2n3_lower_bound(&red, omega);
    let mut order = vec![red.v0];
    order.extend(0..n);
    let z = JoinSequence::new(order);
    let inter: Vec<BigRational> = red.instance.intermediates(&z);
    assert!(inter[2 * n / 3] >= lb);
}

#[test]
fn v0_gatekeeping_survives_the_chain() {
    let f = sat_formula();
    let red_g = clique_reduction::sat_to_two_thirds_clique(&f);
    let b = BigUint::from(2u64).pow(2 * red_g.graph.n() as u64);
    let red = fh_reduction::reduce(&red_g.graph, &b);
    let n_rel = red.instance.n();
    // v0 first: feasible.
    let mut good = vec![red.v0];
    good.extend((0..n_rel).filter(|&v| v != red.v0));
    assert!(red.instance.sequence_feasible(&JoinSequence::new(good)));
    // v0 second: infeasible (its hash table cannot be built).
    let mut bad: Vec<usize> = (0..n_rel).filter(|&v| v != red.v0).collect();
    bad.insert(1, red.v0);
    assert!(!red.instance.sequence_feasible(&JoinSequence::new(bad)));
}

#[test]
fn exact_qoh_gap_on_synthetic_promise_pair() {
    // n = 6 allows the fully exhaustive QO_H optimizer.
    let b = BigUint::from(2u64).pow(12);
    let g_yes = aqo_graph::generators::dense_known_omega(6, 4);
    let g_no = aqo_graph::generators::turan(6, 3);
    let red_yes = fh_reduction::reduce(&g_yes, &b);
    let red_no = fh_reduction::reduce(&g_no, &b);
    let yes = pipeline::optimize_exhaustive(&red_yes.instance).unwrap();
    let no = pipeline::optimize_exhaustive(&red_no.instance).unwrap();
    assert!(yes.sequence.at(0) == red_yes.v0);
    assert!(no.cost.log2() - yes.cost.log2() >= 0.4 * red_yes.a.log2());
}
