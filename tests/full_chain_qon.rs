//! Integration: the complete Theorem 9 chain
//! `3SAT → VERTEX COVER → CLIQUE → QO_N`, exercised across crate
//! boundaries with exact arithmetic at every hop.

use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::{clique, cover};
use aqo_optimizer::dp;
use aqo_reductions::{clique_reduction, fn_reduction, sat_to_vc};
use aqo_sat::{dpll, generators, maxsat, transform};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn satisfiable_chain_produces_cheap_plan() {
    let mut rng = StdRng::seed_from_u64(1);
    let (f, witness) = generators::planted_3sat(3, 3, &mut rng);
    assert!(dpll::is_satisfiable(&f));

    // Hop 1: vertex cover certificate.
    let vc = sat_to_vc::reduce(&f);
    let cover_set = vc.cover_from_assignment(&f, &witness);
    assert!(cover::is_vertex_cover(&vc.graph, &cover_set));
    assert_eq!(cover_set.len(), vc.target_cover);

    // Hop 2: clique certificate.
    let cl = clique_reduction::sat_to_clique(&f);
    let omega = clique::clique_number(&cl.graph);
    assert_eq!(omega, cl.satisfiable_omega);

    // Hop 3: QO_N with a certified-cheap witness plan.
    let a = BigUint::from(4u64);
    let e = omega as u64 - 2;
    let red = fn_reduction::reduce(&cl.graph, &a, e);
    let max_cl = clique::max_clique(&cl.graph);
    let z = fn_reduction::lemma6_sequence(&cl.graph, &max_cl);
    assert!(!red.instance.has_cartesian_product(&z));
    let c: BigRational = red.instance.total_cost(&z);
    let k = BigRational::from(fn_reduction::k_bound(&a, e));
    assert!(c <= k, "Lemma 6 upper bound must hold on the chain output");
}

#[test]
fn gap_chain_certifies_expensive_instance() {
    // The 7/8-satisfiable block: exactly one clause unsatisfiable.
    let f = generators::contradiction_blocks(1);
    let u = f.num_clauses() - maxsat::max_sat(&f).max_satisfied;
    assert_eq!(u, 1);

    let cl = clique_reduction::sat_to_clique(&f);
    let omega = clique::clique_number(&cl.graph) as u64;
    assert_eq!(omega as usize, cl.satisfiable_omega - 1);

    let a = BigUint::from(4u64);
    let e = cl.satisfiable_omega as u64 - 2;
    let red = fn_reduction::reduce(&cl.graph, &a, e);
    let lb = BigRational::from(fn_reduction::lemma8_lower_bound(
        &a,
        e,
        omega,
        cl.graph.n() as u64,
    ));
    // The bound covers every sequence; in particular any witness we build.
    let max_cl = clique::max_clique(&cl.graph);
    let z = fn_reduction::lemma6_sequence(&cl.graph, &max_cl);
    let c: BigRational = red.instance.total_cost(&z);
    assert!(c >= lb);
}

#[test]
fn occurrence_bounded_formulas_survive_the_chain() {
    // 3SAT(13) as the paper requires: transform first, then reduce. The
    // transformed formula is too large for an exact ω computation (the
    // ω-tracking itself is verified on small formulas in the
    // clique_reduction tests); here we check the structural invariants the
    // chain depends on, plus the satisfiable-side clique *witness*.
    let mut rng = StdRng::seed_from_u64(3);
    let (f, witness) = generators::planted_3sat(4, 30, &mut rng);
    let (f13, copy_of) = transform::to_3sat13(&f);
    assert!(f13.max_occurrences() <= transform::OCCURRENCE_BOUND);
    assert!(dpll::is_satisfiable(&f13), "equisatisfiable with the planted formula");
    let cl = clique_reduction::sat_to_clique(&f13);
    assert_eq!(cl.graph.n(), 6 * (f13.num_vars() + f13.num_clauses()));
    // Constructive witness: lift the planted assignment through the copies,
    // build the VC cover, complement to an independent set, add the padding
    // — a clique of exactly the satisfiable size, verified directly.
    let mut assign13 = vec![false; f13.num_vars()];
    for v in 0..f13.num_vars() {
        assign13[v] = witness.get(copy_of[v]).copied().unwrap_or(false);
    }
    assert!(f13.is_satisfied_by(&assign13));
    let vc = sat_to_vc::reduce(&f13);
    let cover_set = vc.cover_from_assignment(&f13, &assign13);
    let in_cover: std::collections::HashSet<usize> = cover_set.into_iter().collect();
    let mut clique_verts: Vec<usize> =
        (0..vc.graph.n()).filter(|v| !in_cover.contains(v)).collect();
    clique_verts.extend(cl.padding_start..cl.graph.n());
    assert_eq!(clique_verts.len(), cl.satisfiable_omega);
    assert!(cl.graph.is_clique(&clique_verts), "lifted witness must be a clique");
}

#[test]
fn promise_gap_exact_dp_on_small_instances() {
    let a = BigUint::from(4u64);
    let e = 8u64;
    let g_yes = aqo_graph::generators::dense_known_omega(12, 9);
    let g_no = aqo_graph::generators::dense_known_omega(12, 6);
    let red_yes = fn_reduction::reduce(&g_yes, &a, e);
    let red_no = fn_reduction::reduce(&g_no, &a, e);
    let opt_yes = dp::optimize::<BigRational>(&red_yes.instance, true).unwrap();
    let opt_no = dp::optimize::<BigRational>(&red_no.instance, true).unwrap();
    // Certified: gap at least a^{e − ω_no − 1} = a^1.
    let gap = CostScalar::log2(&opt_no.cost) - CostScalar::log2(&opt_yes.cost);
    assert!(gap >= a.log2() - 1e-6, "measured gap {gap:.2} bits below certified");
    // And the yes-side is under K.
    assert!(opt_yes.cost <= BigRational::from(fn_reduction::k_bound(&a, e)));
}
