//! Integration: the Appendix chain `PARTITION → SPPCS → SQO−CP`, swept over
//! a dense grid of small instances against the exact solvers of three
//! different crates.

use aqo_bignum::BigUint;
use aqo_optimizer::star;
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized, SppcsInstance};
use aqo_reductions::sqo_reduction;

fn sqo_answer(s: &SppcsInstance) -> bool {
    match s.normalize() {
        Normalized::Trivial(ans) => ans,
        Normalized::Instance(norm) => {
            let red = sqo_reduction::reduce(&norm);
            let (plan, opt) = star::optimize(&red.instance);
            // The optimizer's plan must price correctly.
            assert_eq!(red.instance.plan_cost(&plan), opt);
            opt <= red.budget
        }
    }
}

#[test]
fn exhaustive_partition_grid() {
    // All multisets of 3 items with values 0..=4 and even sum: both hops.
    for a in 0u64..=4 {
        for b in a..=4 {
            for c in b..=4 {
                if (a + b + c) % 2 != 0 {
                    continue;
                }
                let p = PartitionInstance::new(vec![a, b, c]);
                let s = partition_to_sppcs(&p);
                assert_eq!(p.is_yes(), s.is_yes(), "hop 1 items {:?}", [a, b, c]);
                assert_eq!(s.is_yes(), sqo_answer(&s), "hop 2 items {:?}", [a, b, c]);
            }
        }
    }
}

#[test]
fn sppcs_to_sqo_threshold_is_sharp() {
    // Sweep L across the objective landscape of one instance: the star
    // budget decision must flip exactly where SPPCS flips.
    let pairs = [(2u64, 3u64), (3, 2), (2, 4)];
    for l in 0..20u64 {
        let s = SppcsInstance {
            pairs: pairs.iter().map(|&(p, c)| (BigUint::from(p), BigUint::from(c))).collect(),
            l: BigUint::from(l),
        };
        assert_eq!(s.is_yes(), sqo_answer(&s), "L = {l}");
    }
}

#[test]
fn larger_random_partition_instances() {
    let mut state = 0xABCu64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut checked = 0;
    while checked < 8 {
        let n = 2 + (next() % 4) as usize;
        let items: Vec<u64> = (0..n).map(|_| next() % 7).collect();
        if items.iter().sum::<u64>() % 2 != 0 {
            continue;
        }
        let p = PartitionInstance::new(items.clone());
        let s = partition_to_sppcs(&p);
        assert_eq!(p.is_yes(), s.is_yes(), "items {items:?}");
        assert_eq!(s.is_yes(), sqo_answer(&s), "items {items:?}");
        checked += 1;
    }
}
