//! Integration: the §6 sparse variants across the edge-budget window for
//! several τ, including the contrast with polynomial tree optimization.

use aqo_bignum::{BigUint, LogNum};
use aqo_core::{CostScalar, JoinSequence};
use aqo_graph::{generators, Graph};
use aqo_optimizer::dp;
use aqo_reductions::sparse;

fn edge_target(m: usize, tau: f64) -> usize {
    m + (m as f64).powf(tau).ceil() as usize
}

#[test]
fn fn_sparse_window_and_gap_across_tau() {
    let alpha = BigUint::from(4u64).pow(128);
    let beta = BigUint::from(4u64);
    let g_yes = Graph::complete(4);
    let g_no = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
    for tau in [0.25f64, 0.5, 0.75] {
        let m = 16usize;
        // The target must at least accommodate the auxiliary spanning tree.
        let target = edge_target(m, tau).max(g_yes.m() + (m - 4) + 1);
        let ry = sparse::reduce_fn(&g_yes, 2, target, &alpha, &beta, 4);
        let rn = sparse::reduce_fn(&g_no, 2, target, &alpha, &beta, 4);
        assert_eq!(ry.instance.graph().m(), target, "τ = {tau}");
        assert!(ry.instance.graph().is_connected());
        let oy = dp::optimize::<LogNum>(&ry.instance, true).unwrap();
        let on = dp::optimize::<LogNum>(&rn.instance, true).unwrap();
        let gap = CostScalar::log2(&on.cost) - CostScalar::log2(&oy.cost);
        assert!(
            gap >= 0.4 * alpha.log2(),
            "τ = {tau}: gap {gap:.1} bits below 0.4·α"
        );
    }
}

#[test]
fn fh_sparse_preserves_gatekeeping_across_budgets() {
    let g1 = generators::dense_known_omega(6, 4);
    let b = BigUint::from(2u64).pow(200);
    for extra in [40usize, 120, 300] {
        let target = g1.m() + 6 + 1 + extra;
        let red = sparse::reduce_fh(&g1, 2, target, &b);
        let inst = &red.instance;
        assert_eq!(inst.graph().m(), target);
        assert_eq!(inst.n(), 36);
        // v0 gatekeeping: hjmin(t0) exceeds M.
        assert!(inst.hjmin(&red.t0) > *inst.memory());
        // A v0-first sequence is feasible.
        let mut order = vec![red.v0];
        order.extend((0..36).filter(|&v| v != red.v0));
        assert!(inst.sequence_feasible(&JoinSequence::new(order)));
    }
}

#[test]
fn dense_window_upper_end() {
    // e(m) at the top of what the paper's construction can carry:
    // |E₁| + C(m−n, 2) + 1 (the auxiliary graph complete). Note the paper
    // states the window upper end as m(m−1)/2 − Θ(m^τ), but its own
    // construction — E = E₁ ∪ E₂ ∪ {bridge} with G₂ on m − n vertices —
    // tops out at m(m−1)/2 − Θ(m^{1+1/k}); we implement the construction
    // as stated (see crates/reductions/src/sparse.rs).
    let alpha = BigUint::from(4u64).pow(64);
    let beta = BigUint::from(4u64);
    let g = Graph::complete(3);
    let m = 9usize;
    let v2 = m - 3;
    let target = g.m() + v2 * (v2 - 1) / 2 + 1;
    let red = sparse::reduce_fn(&g, 2, target, &alpha, &beta, 2);
    assert_eq!(red.instance.graph().m(), target);
    assert!(red.instance.graph().is_connected());
    // The instance still optimizes cleanly.
    let opt = dp::optimize::<LogNum>(&red.instance, true).unwrap();
    assert!(CostScalar::log2(&opt.cost).is_finite());
}
