//! The QO_H execution model (paper §2.2): pipelined hash joins, pipeline
//! decompositions, and optimal memory allocation, on a small star schema.
//!
//! ```text
//! cargo run --release -p aqo-bench --example pipelined_hash_joins
//! ```

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qoh::{PipelineDecomposition, QoHInstance};
use aqo_core::{JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::pipeline;

fn instance(memory: u64) -> QoHInstance {
    // fact ⋈ dim1 ⋈ dim2 ⋈ dim3 ⋈ dim4 chain.
    let n = 5;
    let mut g = Graph::new(n);
    let mut s = SelectivityMatrix::new();
    for v in 1..n {
        g.add_edge(v - 1, v);
        s.set(v - 1, v, BigRational::new(BigInt::one(), BigUint::from(10u64)));
    }
    let sizes = vec![
        BigUint::from(1_000_000u64),
        BigUint::from(40_000u64),
        BigUint::from(40_000u64),
        BigUint::from(40_000u64),
        BigUint::from(40_000u64),
    ];
    QoHInstance::new(g, sizes, s, BigUint::from(memory))
}

fn main() {
    println!("=== QO_H: pipelined hash joins under a memory budget ===\n");
    let z = JoinSequence::identity(5);

    for memory in [500u64, 5_000, 50_000, 200_000] {
        let inst = instance(memory);
        println!("memory budget M = {memory} pages  (hjmin(40000) = {})", inst.hjmin(&BigUint::from(40_000u64)));
        match pipeline::best_decomposition(&inst, &z) {
            None => println!("  -> no feasible plan: M below hjmin of some inner relation\n"),
            Some((decomp, cost)) => {
                println!("  optimal decomposition: {:?}", decomp.fragments());
                println!("  cost (optimal per-fragment allocation): 2^{:.2}", cost.log2());
                // Compare the two extremes.
                for (label, d) in [
                    ("fully pipelined ", PipelineDecomposition::single_pipeline(5)),
                    ("fully materialized", PipelineDecomposition::singletons(5)),
                ] {
                    match inst.plan_cost_optimal_alloc(&z, &d) {
                        Some(c) => println!("  {label}: 2^{:.2}", c.log2()),
                        None => println!("  {label}: infeasible"),
                    }
                }
                println!();
            }
        }
    }

    // Join-order search on top: exhaustive with per-sequence decomposition DP.
    let inst = instance(50_000);
    let plan = pipeline::optimize_exhaustive(&inst).expect("feasible");
    println!("best overall plan:");
    println!("  sequence      : {:?}", plan.sequence.order());
    println!("  decomposition : {:?}", plan.decomposition.fragments());
    println!("  cost          : 2^{:.2}", plan.cost.log2());
    println!("\n(the model is the paper's h(m,b_R,b_S) = (b_R+b_S)·g(m,b_S) + b_S with");
    println!(" g linear, g(hjmin)=1, g(b_S)=0 — every Θ-constant instantiated to 1)");
}
