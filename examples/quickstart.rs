//! Quickstart: build a QO_N instance by hand, evaluate join sequences under
//! the paper's nested-loops cost model, and find the optimum three ways.
//!
//! ```text
//! cargo run --release -p aqo-bench --example quickstart
//! ```

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::Graph;
use aqo_optimizer::{dp, exhaustive, greedy};

fn main() {
    // A 5-relation cycle query: orders ⋈ customers ⋈ items ⋈ suppliers ⋈ regions,
    // with a predicate closing the cycle.
    let names = ["orders", "customers", "items", "suppliers", "regions"];
    let n = names.len();
    let mut graph = Graph::new(n);
    let mut sel = SelectivityMatrix::new();
    let mut acc = AccessCostMatrix::new();
    let sizes: Vec<BigUint> =
        [50_000u64, 5_000, 200_000, 1_000, 25].iter().map(|&t| BigUint::from(t)).collect();

    // Edges with selectivities 1/d; access costs at the model's lower bound
    // w(j,k) = ceil(t_j·s_jk) (an index lookup).
    let edges = [(0, 1, 5_000u64), (0, 2, 200_000), (2, 3, 1_000), (3, 4, 25), (4, 1, 5_000)];
    for &(u, v, d) in &edges {
        graph.add_edge(u, v);
        let s = BigRational::new(BigInt::one(), BigUint::from(d));
        sel.set(u, v, s.clone());
        for (j, k) in [(u, v), (v, u)] {
            let w = (BigRational::from(sizes[j].clone()) * &s).ceil();
            acc.set(j, k, w.magnitude().clone());
        }
    }
    let inst = QoNInstance::new(graph, sizes, sel, acc);

    println!("Query graph: {} relations, {} predicates\n", inst.n(), inst.graph().m());

    // Cost a hand-written plan.
    let naive = JoinSequence::identity(n);
    let report = inst.cost::<BigRational>(&naive);
    println!("naive order {:?}:", names);
    for (i, h) in report.per_join.iter().enumerate() {
        println!("  J{} brings {:10}  H = {}", i + 1, names[naive.at(i + 1)], h);
    }
    println!("  total C(Z) = {}\n", report.total);

    // Exact optimization three ways: exhaustive, subset DP, branch & bound.
    let best_exh = exhaustive::optimize::<BigRational>(&inst);
    let best_dp = dp::optimize::<BigRational>(&inst, true).unwrap();
    let best_bb = aqo_optimizer::branch_bound::optimize::<BigRational>(&inst, true).unwrap();
    assert_eq!(best_exh.cost, best_dp.cost);
    assert_eq!(best_exh.cost, best_bb.cost);
    let order: Vec<&str> = best_dp.sequence.order().iter().map(|&v| names[v]).collect();
    println!("optimal order  : {order:?}");
    println!("optimal cost   : {}", best_dp.cost);
    println!(
        "naive/optimal  : {:.1}x\n",
        (CostScalar::log2(&report.total) - CostScalar::log2(&best_dp.cost)).exp2()
    );

    // A polynomial-time heuristic for comparison.
    let g = greedy::min_intermediate(&inst, true).unwrap();
    let g_cost: BigRational = inst.total_cost(&g);
    let g_order: Vec<&str> = g.order().iter().map(|&v| names[v]).collect();
    println!("greedy order   : {g_order:?}");
    println!("greedy cost    : {g_cost}  ({:+.1} bits vs optimal)",
        CostScalar::log2(&g_cost) - CostScalar::log2(&best_dp.cost));
}
