//! Certificate decoding: run an optimizer on a reduction instance and read
//! the hidden combinatorial answer back out of the plan it found. This is
//! the constructive meaning of "reduction" — a query optimizer good enough
//! to find cheap plans is a clique finder (and a number partitioner).
//!
//! ```text
//! cargo run --release -p aqo-bench --example certificates
//! ```

use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::generators;
use aqo_optimizer::{dp, star};
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized};
use aqo_reductions::{decode, fn_reduction, sqo_reduction};

fn main() {
    println!("=== decoding a clique out of a query plan ===\n");
    let (n, k) = (14usize, 10usize);
    let g = generators::dense_known_omega(n, k);
    println!("instance: f_N over a dense graph on {n} vertices with planted ω = {k}");
    let red = fn_reduction::reduce(&g, &BigUint::from(4u64), (k - 1) as u64);
    let opt = dp::optimize::<BigRational>(&red.instance, true).unwrap();
    println!("optimizer found a plan of cost 2^{:.1}", CostScalar::log2(&opt.cost));
    let kappa = k - 2;
    match decode::clique_from_sequence(&red, &opt.sequence, kappa) {
        Some(c) => {
            println!("decoded from its prefix: a clique of size {} (> κ = {kappa}):", c.len());
            println!("  {c:?}");
            assert!(g.is_clique(&c));
        }
        None => println!("prefix not dense enough (no certificate — cannot happen here)"),
    }

    println!("\n=== decoding a PARTITION witness out of a star plan ===\n");
    let items = vec![7u64, 3, 2, 5, 1];
    println!("PARTITION items {items:?} (half-sum {})", items.iter().sum::<u64>() / 2);
    let p = PartitionInstance::new(items.clone());
    let s = partition_to_sppcs(&p);
    let norm = match s.normalize() {
        Normalized::Instance(i) => i,
        Normalized::Trivial(ans) => {
            println!("trivial: {ans}");
            return;
        }
    };
    let red = sqo_reduction::reduce(&norm);
    let (plan, cost) = star::optimize(&red.instance);
    println!(
        "star-query optimizer: cost 2^{:.1} vs budget 2^{:.1} -> {}",
        cost.log2(),
        red.budget.log2(),
        if cost <= red.budget { "within budget (YES)" } else { "over budget (NO)" }
    );
    if cost <= red.budget {
        let subset = decode::subset_from_star_plan(&plan);
        println!("decoded SPPCS subset (pair indices): {subset:?}");
        let chosen: Vec<u64> = subset.iter().map(|&i| items[i]).collect();
        println!(
            "as PARTITION items: {chosen:?} summing to {} = half of {}",
            chosen.iter().sum::<u64>(),
            items.iter().sum::<u64>()
        );
    }
}
