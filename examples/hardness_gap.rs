//! The paper's main theorem, end to end: a 3SAT formula's satisfiability
//! gap becomes a clique gap (Lemma 3), which `f_N` turns into a
//! query-optimization cost gap (Theorem 9) — with every inequality
//! certified in exact arithmetic.
//!
//! ```text
//! cargo run --release -p aqo-bench --example hardness_gap
//! ```

use aqo_bignum::{BigRational, BigUint};
use aqo_core::CostScalar;
use aqo_graph::clique;
use aqo_optimizer::dp;
use aqo_reductions::{clique_reduction, fn_reduction};
use aqo_sat::{dpll, generators, maxsat};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let a = BigUint::from(4u64);
    println!("=== 3SAT → CLIQUE → QO_N, the Theorem 9 chain ===\n");

    // A satisfiable formula.
    let mut rng = StdRng::seed_from_u64(42);
    let (f_sat, _) = generators::planted_3sat(3, 3, &mut rng);
    println!("satisfiable formula: {} vars, {} clauses (DPLL: {})",
        f_sat.num_vars(), f_sat.num_clauses(), dpll::is_satisfiable(&f_sat));
    let red_g = clique_reduction::sat_to_clique(&f_sat);
    let omega = clique::clique_number(&red_g.graph);
    println!("Lemma 3 graph: {} vertices, ω = {} (predicted {})",
        red_g.graph.n(), omega, red_g.satisfiable_omega);
    let e = omega as u64 - 2;
    let red = fn_reduction::reduce(&red_g.graph, &a, e);
    let witness = clique::max_clique(&red_g.graph);
    let z = fn_reduction::lemma6_sequence(&red_g.graph, &witness);
    let c: BigRational = red.instance.total_cost(&z);
    let k = BigRational::from(fn_reduction::k_bound(&a, e));
    println!("f_N instance: e = {e}, witness cost 2^{:.1} ≤ K = 2^{:.1}  ({})\n",
        CostScalar::log2(&c), k.log2(), if c <= k { "Lemma 6 holds" } else { "?!" });

    // A gap formula: the contradiction block is at most 7/8 satisfiable.
    let f_gap = generators::contradiction_blocks(1);
    let best = maxsat::max_sat(&f_gap);
    println!("gap formula: {} clauses, MaxSAT = {} ({} unsatisfied — exactly the 7/8 family)",
        f_gap.num_clauses(), best.max_satisfied, f_gap.num_clauses() - best.max_satisfied);
    let red_g2 = clique_reduction::sat_to_clique(&f_gap);
    let omega2 = clique::clique_number(&red_g2.graph) as u64;
    println!("Lemma 3 graph: {} vertices, ω = {} (one below the satisfiable {})",
        red_g2.graph.n(), omega2, red_g2.satisfiable_omega);
    let e2 = red_g2.satisfiable_omega as u64 - 2;
    let lb = BigRational::from(fn_reduction::lemma8_lower_bound(
        &a, e2, omega2, red_g2.graph.n() as u64));
    println!("certified: EVERY join sequence of its f_N instance costs ≥ 2^{:.1} (Lemma 8)\n",
        lb.log2());

    // The gap made exact at DP scale: planted vs bounded clique families.
    println!("=== the promise gap, measured exactly (subset DP) ===\n");
    println!("{:>4} {:>6} {:>6} {:>14} {:>14} {:>10}", "n", "ω_yes", "ω_no", "C*_yes", "C*_no", "gap");
    for (n, ky, kn) in [(10usize, 8usize, 5usize), (12, 9, 6), (14, 11, 7)] {
        let e = ky as u64 - 1;
        let gy = aqo_graph::generators::dense_known_omega(n, ky);
        let gn = aqo_graph::generators::dense_known_omega(n, kn);
        let ry = fn_reduction::reduce(&gy, &a, e);
        let rn = fn_reduction::reduce(&gn, &a, e);
        let oy = dp::optimize::<BigRational>(&ry.instance, true).unwrap();
        let on = dp::optimize::<BigRational>(&rn.instance, true).unwrap();
        let gap = CostScalar::log2(&on.cost) - CostScalar::log2(&oy.cost);
        println!(
            "{n:>4} {ky:>6} {kn:>6} {:>14} {:>14} {:>9.1}b",
            format!("2^{:.1}", CostScalar::log2(&oy.cost)),
            format!("2^{:.1}", CostScalar::log2(&on.cost)),
            gap
        );
    }
    println!("\nWith the paper's a(n) = 4^(n^(1/δ)) calibration this gap is 2^Θ(log^(1-δ) K):");
    println!("approximating QO_N within any polylog factor of optimal is NP-hard.");
}
