//! §6: hardness survives on sparse query graphs. `f_{N,e}` pins the edge
//! count to any target in the window `(m + Θ(m^τ), m²/2 − Θ(m^τ))` and the
//! gap persists — only trees (and `m + o(m^τ)` edges) escape, where IKKBZ
//! optimizes exactly in polynomial time.
//!
//! ```text
//! cargo run --release -p aqo-bench --example sparse_hardness
//! ```

use aqo_bignum::{BigInt, BigRational, BigUint, LogNum};
use aqo_core::{AccessCostMatrix, CostScalar, SelectivityMatrix};
use aqo_graph::{generators, Graph};
use aqo_optimizer::{dp, ikkbz};
use aqo_reductions::sparse;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("=== sparse query graphs (Theorem 16) ===\n");
    let alpha = BigUint::from(4u64).pow(128);
    let beta = BigUint::from(4u64);
    let g_yes = Graph::complete(4); // ω = 4
    let g_no = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]); // star, ω = 2

    println!("{:>8} {:>7} {:>16} {:>16} {:>12}", "edges", "m", "C*_yes", "C*_no", "gap(α units)");
    // The construction carries at most |E₁| + C(12,2) + 1 = 73 edges here.
    for target in [30usize, 45, 60, 73] {
        let ry = sparse::reduce_fn(&g_yes, 2, target, &alpha, &beta, 4);
        let rn = sparse::reduce_fn(&g_no, 2, target, &alpha, &beta, 4);
        let oy = dp::optimize::<LogNum>(&ry.instance, true).unwrap();
        let on = dp::optimize::<LogNum>(&rn.instance, true).unwrap();
        let gap = (CostScalar::log2(&on.cost) - CostScalar::log2(&oy.cost)) / alpha.log2();
        println!(
            "{target:>8} {:>7} {:>16} {:>16} {gap:>12.2}",
            ry.instance.n(),
            format!("2^{:.0}", CostScalar::log2(&oy.cost)),
            format!("2^{:.0}", CostScalar::log2(&on.cost)),
        );
    }
    println!("\nThe same K₄-vs-star promise gap survives every edge budget in the window:");
    println!("the auxiliary graph carries the surplus edges at α^O(1) cost.\n");

    println!("=== the escape hatch: trees (§6.3) ===\n");
    let mut rng = StdRng::seed_from_u64(5);
    for n in [12usize, 16, 20] {
        let g = generators::random_tree(n, &mut rng);
        let sizes: Vec<BigUint> =
            (0..n).map(|_| BigUint::from(rng.gen_range(2u64..500))).collect();
        let mut s = SelectivityMatrix::new();
        let mut w = AccessCostMatrix::new();
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..20)));
            s.set(u, v, sel.clone());
            for (j, k) in [(u, v), (v, u)] {
                let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
                w.set(j, k, lower.magnitude().clone());
            }
        }
        let inst = aqo_core::qon::QoNInstance::new(g, sizes, s, w);
        let ik = ikkbz::optimize(&inst);
        let exact = dp::optimize::<BigRational>(&inst, false).unwrap();
        println!(
            "tree n = {n}: IKKBZ cost {} — {} the exact optimum (O(n² log n) vs O(2^n))",
            ik.cost,
            if ik.cost == exact.cost { "equals" } else { "differs from!" }
        );
    }
    println!("\nWith m − 1 edges the problem is polynomial; with m + Θ(m^τ) it is already");
    println!("inapproximable — Theorem 16/17 leave no middle ground beyond m + o(m^τ).");
}
