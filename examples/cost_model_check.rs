//! Does the paper's cost model describe anything real? Execute the plans.
//!
//! The §2.1 estimates assume independent uniform join columns; this example
//! generates exactly such data, runs left-deep plans tuple by tuple, and
//! compares measured intermediates and probe counts with `N(X)` and `C(Z)`.
//!
//! ```text
//! cargo run --release -p aqo-bench --example cost_model_check
//! ```

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, JoinSequence, SelectivityMatrix};
use aqo_exec::validate::calibrate;
use aqo_exec::{Database, Executor};
use aqo_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chain() -> QoNInstance {
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let sizes = [500u64, 400, 300, 200];
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (&(u, v), d) in [(0usize, 1usize), (1, 2), (2, 3)].iter().zip([100u64, 150, 100]) {
        s.set(u, v, BigRational::new(BigInt::one(), BigUint::from(d)));
        w.set(u, v, BigUint::from((sizes[u] as f64 / d as f64).ceil() as u64));
        w.set(v, u, BigUint::from((sizes[v] as f64 / d as f64).ceil() as u64));
    }
    QoNInstance::new(g, sizes.iter().map(|&t| BigUint::from(t)).collect(), s, w)
}

fn main() {
    let inst = chain();
    let mut rng = StdRng::seed_from_u64(1);
    let z = JoinSequence::identity(4);

    println!("=== one execution, side by side ===\n");
    let db = Database::generate(&inst, &mut rng);
    let ex = Executor::new(&inst, &db);
    let run = ex.run(&z, true);
    let model = inst.cost::<BigRational>(&z);
    println!("{:>6} {:>14} {:>14} {:>14} {:>14}", "join", "N model", "N measured", "H model", "probes");
    for i in 1..inst.n() {
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            format!("J{i}"),
            model.intermediates[i].to_string(),
            run.intermediates[i],
            model.per_join[i - 1].to_string(),
            run.per_join[i - 1],
        );
    }
    println!("\ntotal: model C(Z) = {}, measured work = {}", model.total, run.total_work);

    println!("\n=== averaged over fresh databases ===\n");
    let cal = calibrate(&inst, &z, 8, &mut rng);
    println!("worst intermediate error : {:.1}%", cal.worst_intermediate_error(100.0) * 100.0);
    println!("total cost error         : {:.1}%", cal.cost_error() * 100.0);
    println!("\n(The hardness theorems are about optimizing exactly this model —");
    println!(" which the execution engine confirms is the right model for");
    println!(" independence-distributed data.)");
}
