//! What the hardness theorems mean in practice: greedy / annealing /
//! genetic optimizers are fine on ordinary queries and collapse on the
//! paper's adversarial instances.
//!
//! ```text
//! cargo run --release -p aqo-bench --example heuristics_showdown
//! ```

use aqo_bignum::{BigInt, BigRational, BigUint};
use aqo_core::qon::QoNInstance;
use aqo_core::{AccessCostMatrix, CostScalar, JoinSequence, SelectivityMatrix};
use aqo_graph::generators;
use aqo_optimizer::{dp, genetic, greedy, local_search};
use aqo_reductions::fn_reduction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(n: usize, rng: &mut StdRng) -> QoNInstance {
    let g = generators::random_connected(n, n + n / 2, rng);
    let sizes: Vec<BigUint> = (0..n).map(|_| BigUint::from(rng.gen_range(10u64..5000))).collect();
    let mut s = SelectivityMatrix::new();
    let mut w = AccessCostMatrix::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        let sel = BigRational::new(BigInt::one(), BigUint::from(rng.gen_range(2u64..100)));
        s.set(u, v, sel.clone());
        for (j, k) in [(u, v), (v, u)] {
            let lower = (BigRational::from(sizes[j].clone()) * &sel).ceil();
            w.set(j, k, lower.magnitude().clone());
        }
    }
    QoNInstance::new(g, sizes, s, w)
}

fn showdown(label: &str, inst: &QoNInstance, rng: &mut StdRng) {
    // Search in log domain; certify the winner in exact arithmetic.
    let opt = dp::optimize::<aqo_bignum::LogNum>(inst, true).expect("connected");
    let exact: BigRational = inst.total_cost(&opt.sequence);
    let opt_bits = CostScalar::log2(&exact);
    println!("{label}: n = {}, exact optimum 2^{opt_bits:.1}", inst.n());
    let eval = |name: &str, z: &JoinSequence| {
        let c: BigRational = inst.total_cost(z);
        println!("  {name:<16} +{:>7.1} bits over optimal", CostScalar::log2(&c) - opt_bits);
    };
    eval("greedy-min-N", &greedy::min_intermediate(inst, true).unwrap());
    eval("greedy-min-H", &greedy::min_incremental_cost(inst, true).unwrap());
    eval(
        "sim-annealing",
        &local_search::simulated_annealing(
            inst,
            &local_search::SaParams { iterations: 5000, ..Default::default() },
            rng,
        ),
    );
    eval(
        "genetic",
        &genetic::optimize(
            inst,
            &genetic::GaParams { population: 32, generations: 60, ..Default::default() },
            rng,
        ),
    );
    eval("random-order", &greedy::random_sequence(inst.n(), rng));
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    println!("=== ordinary queries: heuristics are competitive ===\n");
    let inst = random_instance(14, &mut rng);
    showdown("random catalogue", &inst, &mut rng);

    println!("=== deceptive f_N instances: local density hides the clique ===\n");
    for n in [12usize, 18] {
        // Turán decoys (high degree, ω = 3) + a hidden K_{n/3} on low-degree
        // vertices behind sparse bridges: greedy follows the decoys.
        let k = n / 3;
        let d = n - k;
        let mut g = aqo_graph::Graph::new(n);
        for u in 0..d {
            for v in u + 1..d {
                if u % 3 != v % 3 {
                    g.add_edge(u, v);
                }
            }
        }
        for u in d..n {
            for v in u + 1..n {
                g.add_edge(u, v);
            }
        }
        for (i, p) in (d..n).enumerate() {
            g.add_edge(p, i % d);
        }
        let red = fn_reduction::reduce(&g, &BigUint::from(64u64), (k - 1) as u64);
        showdown("f_N deceptive (a = 64)", &red.instance, &mut rng);
    }
    println!("(Theorem 9: closing this gap in polynomial time within 2^(log^(1-δ) K)");
    println!(" for any δ > 0 would prove P = NP.)");
}
