//! Appendix A/B in action: a PARTITION instance becomes an SPPCS instance,
//! then a star query whose *optimal physical plan* encodes the partition —
//! nested-loops joins pick the subset, sort-merge joins pay the complement.
//!
//! ```text
//! cargo run --release -p aqo-bench --example star_query
//! ```

use aqo_core::sqo::JoinMethod;
use aqo_optimizer::star;
use aqo_reductions::partition::PartitionInstance;
use aqo_reductions::sppcs::{partition_to_sppcs, Normalized};
use aqo_reductions::sqo_reduction;

fn run(items: Vec<u64>) {
    println!("PARTITION items {items:?}  (target half-sum {})", items.iter().sum::<u64>() / 2);
    let p = PartitionInstance::new(items);
    match p.witness() {
        Some(w) => println!("  partitionable: witness indices {w:?}"),
        None => println!("  not partitionable"),
    }

    let s = partition_to_sppcs(&p);
    println!("  SPPCS: {} pairs, L with {} bits; answer = {}", s.len(), s.l.bits(), s.is_yes());

    let norm = match s.normalize() {
        Normalized::Trivial(ans) => {
            println!("  (trivial after normalization: {ans})\n");
            return;
        }
        Normalized::Instance(i) => i,
    };
    let red = sqo_reduction::reduce(&norm);
    let (plan, cost) = star::optimize(&red.instance);
    let within = cost <= red.budget;
    println!(
        "  SQO−CP star query: {} relations; optimal plan cost 2^{:.1}, budget 2^{:.1} -> {}",
        norm.len() + 2,
        cost.log2(),
        red.budget.log2(),
        if within { "PLAN FITS (YES)" } else { "over budget (NO)" }
    );
    // Decode the plan back into a subset.
    let mut chosen = Vec::new();
    let mut anchor_seen = false;
    for (pos, &rel) in plan.order.iter().enumerate().skip(1) {
        if rel == norm.len() + 1 {
            anchor_seen = true;
            continue;
        }
        if rel >= 1 && rel <= norm.len() && !anchor_seen
            && plan.methods[pos - 1] == JoinMethod::NestedLoops {
                chosen.push(rel - 1);
            }
    }
    println!("  plan order {:?}", plan.order);
    println!("  NL-before-anchor satellites (the encoded subset A): {chosen:?}\n");
}

fn main() {
    println!("=== SQO−CP: star query optimization without cross products ===\n");
    run(vec![1, 2, 3]);
    run(vec![1, 3]);
    run(vec![3, 5, 4, 2]);
    run(vec![2, 2, 2, 2]);
}
