//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the rand 0.8 API it actually uses: [`Rng`]
//! (`gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is all the tests and workload generators need.
//! The streams differ from upstream rand's `StdRng` (ChaCha12), so seeds do
//! not reproduce upstream sequences; nothing in the workspace depends on
//! the exact stream, only on determinism per seed.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly. Implemented for half-open and
/// inclusive ranges over the integer types and `f64`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the workspace's standard RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.
    use super::{Rng, RngCore};

    /// Slice shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
