//! `any::<T>()` — the full-domain strategy for primitive types.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// Returns the full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}
