//! Strategies: composable recipes for generating random values.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for producing values of an associated type from an RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals act as generation patterns, as in upstream proptest.
/// Only the `[class]{lo,hi}` subset is supported (character classes with
/// ranges and literal characters, e.g. `"[a-z0-9 \n]{0,200}"`); anything
/// else panics at sampling time.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        let (class, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.gen_range(lo..=hi);
        (0..len).map(|_| class[rng.gen_range(0..class.len())]).collect()
    }
}

/// Parses `[chars]{lo,hi}` into (expanded alphabet, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, quant) = rest.split_at(close);
    let quant = quant.strip_prefix(']')?.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = quant.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);

    let chars: Vec<char> = class_src.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
