//! Case generation and execution for [`crate::proptest!`] tests.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration. Only the case count is configurable.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` precondition failed; the case does not count.
    Reject,
}

/// Verdict of one generated case (mirrors upstream's alias shape, so test
/// bodies can `return Ok(())` early).
pub type TestCaseResult = Result<(), TestCaseError>;

/// Executes the configured number of cases with per-case deterministic
/// seeds derived from the test name, so failures are reproducible.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner. `PROPTEST_CASES` overrides the configured count.
    pub fn new(config: ProptestConfig) -> Self {
        let config = match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(cases) => ProptestConfig { cases },
            None => config,
        };
        TestRunner { config }
    }

    /// Runs `f` until `config.cases` cases pass. Rejections are retried up
    /// to a global cap; failures panic (propagated out of `f`) with the
    /// case seed printed for reproduction.
    pub fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut StdRng) -> TestCaseResult,
    {
        let base = fnv1a(name.as_bytes());
        let max_attempts = (self.config.cases as u64).saturating_mul(20).max(100);
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        while accepted < self.config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{name}': too many prop_assume! rejections \
                     ({accepted}/{} cases accepted after {attempt} attempts)",
                    self.config.cases
                );
            }
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9E3779B97F4A7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
            match outcome {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(TestCaseError::Reject)) => {}
                Err(payload) => {
                    eprintln!(
                        "proptest '{name}': case {accepted} failed (attempt {attempt}, \
                         seed {seed:#x})"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
            attempt += 1;
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 5u64..=9), c in any::<bool>()) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
            let _ = c;
        }

        #[test]
        fn assume_rejects(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn map_and_vec(xs in prop::collection::vec(0u32..50, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 50));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..5).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
