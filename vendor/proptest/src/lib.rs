//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a miniature property-testing framework with the subset of the proptest
//! 1.x API its tests use: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`arbitrary::any`], `prop::collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic seed instead), and sampling streams differ. Each named
//! test draws cases from a seed derived from the test name, so runs are
//! reproducible; set `PROPTEST_CASES` to override the case count.

pub mod strategy;
pub mod arbitrary;
pub mod collection;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirrors the `prop` module re-exported by the upstream prelude.
        pub use crate::collection;
    }
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are drawn from strategies with `pat in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run(stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("property assertion failed: {}", format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            panic!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), __a, __b
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            panic!(
                "property assertion failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __a, __b
            );
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            panic!(
                "property assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), __a
            );
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
