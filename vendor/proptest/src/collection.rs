//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
