//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal timing harness exposing the subset of the criterion 0.5 API
//! its benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the simple and the
//! `name/config/targets` forms).
//!
//! Statistics are deliberately simple — median of per-iteration wall-clock
//! means over `sample_size` samples — with none of criterion's outlier
//! analysis, HTML reports, or baseline comparisons. Good enough to smoke-run
//! `cargo bench` and eyeball regressions offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Times one benchmark's closure.
pub struct Bencher<'a> {
    settings: Settings,
    samples: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly, recording the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut calls_per_sample = 0u64;
        loop {
            black_box(f());
            calls_per_sample += 1;
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        // Aim each sample at measurement_time / sample_size.
        let per_sample = self.settings.measurement_time.as_secs_f64()
            / self.settings.sample_size as f64;
        let warm_rate = warm_start.elapsed().as_secs_f64() / calls_per_sample as f64;
        let iters = ((per_sample / warm_rate.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn report(label: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!("{label:<50} time: [{} {} {}]", fmt_time(lo), fmt_time(median), fmt_time(hi));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    filter: &'a Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Times `f` under this group's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        if let Some(pat) = self.filter {
            if !label.contains(pat.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::new();
        f(&mut Bencher { settings: self.settings, samples: &mut samples });
        report(&label, &mut samples);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Criterion {
    /// Default sample count for benchmarks configured from this driver.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Default warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Default measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Reads a substring filter from the command line, skipping harness
    /// flags cargo passes (`--bench`, `--test`, etc.).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named benchmark group inheriting this driver's settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, filter: &self.filter }
    }

    /// Times `f` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        if let Some(pat) = &self.filter {
            if !label.contains(pat.as_str()) {
                return self;
            }
        }
        let mut samples = Vec::new();
        f(&mut Bencher { settings: self.settings, samples: &mut samples });
        report(&label, &mut samples);
        self
    }

    /// Times `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Final-report hook (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the listed groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
